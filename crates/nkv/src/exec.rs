//! The hybrid NDP execution engine.
//!
//! "For both operations the execution is implemented in a hybrid way,
//! where the software executes a very general algorithm and exploits the
//! hardware whenever datablocks have to be filtered or transformed"
//! (paper, Sec. V). This module implements that firmware algorithm for
//! GET and SCAN against the simulated platform:
//!
//! * **Software mode** runs the shared byte-level oracle on the ARM core
//!   (with the calibrated per-byte cost);
//! * **Hardware mode** stages blocks in DRAM and dispatches them to the
//!   PEs through the *generated driver* (`ndp-swgen`), charging the
//!   register-access configuration overhead that makes GET not profit
//!   from acceleration.
//!
//! Hardware filtering supports two fidelities: `cycle_accurate` drives
//! the full tick-level PE model through the driver for every block;
//! the fast path computes identical results with the byte oracle and the
//! *validated* analytic cycle estimator (`ndp_pe::estimate_block_cycles`).
//! Tests assert both fidelities agree on results, counts and (within
//! tolerance) time.
//!
//! SCAN correctness over a multi-version LSM uses *post-filter
//! reconciliation*: every component is scanned and filtered
//! independently (that is what the PEs can do), then a matched record is
//! dropped iff any strictly newer component contains or tombstones its
//! key — checked against memtable, tombstone lists and per-SST bloom
//! filters, with a confirming block read on bloom hits. The result
//! equals "newest version, if it matches the predicate".
//!
//! # Resilience
//!
//! The executor runs *below* the host's error-handling stack, so it owns
//! the device-side fault policy ([`ResilienceConfig`]):
//!
//! * **retry with backoff** — transient page-read failures are retried a
//!   bounded number of times, each attempt delayed by an exponentially
//!   growing amount of *simulated* time; exhaustion surfaces as the typed
//!   [`NkvError::RetriesExhausted`];
//! * **watchdog + HW→SW degradation** — if a PE never raises DONE, the
//!   firmware's DONE poll times out after `watchdog_ns`, the PE is marked
//!   failed for the rest of the session, and the block is re-processed by
//!   the ARM software oracle (results stay identical, only time is lost).
//!   With `hw_fallback_to_sw` disabled the op fails with
//!   [`NkvError::PeTimeout`] instead;
//! * **health accounting** — every retry, watchdog trip and fallback is
//!   counted in [`HealthCounters`], surfaced device-wide through
//!   `NkvDb::health_report`.

use crate::engine::{
    arm_filter, claim_pe, next_healthy_pe, read_block_resilient, read_index_page_resilient,
    schedule_hw_job, sw_resume_at, PeGrant,
};
use crate::error::{NkvError, NkvResult};
use crate::lsm::LsmTree;
use crate::memtable::Entry;
use crate::sst::{search_block, SstMeta};
use cosmos_sim::dram::DramClient;
use cosmos_sim::{timing, CosmosPlatform, Server, SimNs};
use ndp_pe::oracle::{BlockProcessor, FilterRule, OpTable};
use ndp_pe::pipeline::estimate_block_cycles;
use ndp_pe::{MemBus, PeDevice};
use ndp_swgen::{DriverProfile, FilterJob, PeDriver};

/// Where filtering runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// ARM software NDP (the paper's "SW" bars).
    Software,
    /// FPGA PEs through the generated interface (the "HW" bars).
    Hardware,
}

/// Simulated-time and traffic report of one operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimReport {
    /// Simulated duration of the operation in nanoseconds.
    pub sim_ns: SimNs,
    /// Data blocks read from flash.
    pub blocks: u64,
    /// Bytes of table data scanned.
    pub bytes_scanned: u64,
    /// Result payload bytes.
    pub result_bytes: u64,
    /// Tuples inspected / passed.
    pub tuples_in: u64,
    pub tuples_out: u64,
    /// PE control-register traffic.
    pub reg_writes: u64,
    pub reg_reads: u64,
    /// Extra block reads spent confirming bloom-filter hits during the
    /// scan shadow check.
    pub shadow_confirm_reads: u64,
}

/// Memory-bus adapter exposing the platform DRAM to PE devices.
pub struct DramBus<'a>(pub &'a mut cosmos_sim::Dram);

impl MemBus for DramBus<'_> {
    fn read_bytes(&mut self, addr: u64, buf: &mut [u8]) {
        self.0.read(addr, buf);
    }

    fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        self.0.write(addr, data);
    }
}

/// Per-driver DRAM staging layout: input buffer then output buffer.
const STAGE_STRIDE: u64 = 256 * 1024;
const STAGE_OUT_OFF: u64 = 128 * 1024;

/// Device-side fault policy of one table's executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Retries after the first failed block read (0 = fail fast).
    pub max_read_retries: u32,
    /// Backoff before retry `n` is `backoff_base_ns << (n - 1)`
    /// (simulated time; the firmware busy-waits the flash controller).
    pub backoff_base_ns: SimNs,
    /// How long the firmware polls a PE's DONE flag before declaring it
    /// hung. Charged in full on every watchdog trip.
    pub watchdog_ns: SimNs,
    /// Degrade a hung PE's work to the ARM software oracle (results stay
    /// identical) instead of failing the operation with
    /// [`NkvError::PeTimeout`].
    pub hw_fallback_to_sw: bool,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        Self {
            max_read_retries: 3,
            backoff_base_ns: 50_000,
            watchdog_ns: 1_000_000,
            hw_fallback_to_sw: true,
        }
    }
}

/// Error/degradation counters of one table's executor (monotonic since
/// table creation; see `NkvDb::health_report` for the device-wide view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HealthCounters {
    /// Block/page reads that were retried after a transient failure.
    pub read_retries: u64,
    /// Simulated time spent in retry backoff.
    pub retry_backoff_ns: SimNs,
    /// Reads abandoned after exhausting the retry budget.
    pub reads_failed: u64,
    /// Watchdog timeouts on a PE DONE poll (one per hang observed).
    pub watchdog_trips: u64,
    /// Blocks processed by the ARM oracle because no healthy PE was
    /// available (includes the block of each watchdog trip).
    pub sw_fallback_blocks: u64,
}

/// Execution state for one table's PEs.
pub struct TableExec {
    /// The table's precompiled functional semantics.
    pub processor: BlockProcessor,
    /// Operator dispatch table.
    pub ops: OpTable,
    /// PE drivers (one per attached PE; blocks round-robin over them).
    pub drivers: Vec<PeDriver<Box<dyn PeDevice>>>,
    /// Per-PE timing servers (a PE can only process one block at a time).
    pub pe_servers: Vec<Server>,
    /// Register protocol in use.
    pub profile: DriverProfile,
    /// Filtering stages the PEs provide.
    pub stages: u32,
    /// Drive the tick-level PE model instead of the fast path.
    pub cycle_accurate: bool,
    /// Full-block payload size (whole records per 32 KiB block).
    pub full_block_payload: u32,
    /// Chunk (block) size in bytes.
    pub chunk_bytes: u32,
    /// Run the post-filter shadow check. Disabled for multi-record-key
    /// (duplicate-key) tables, where a key match in a newer component
    /// does not imply version shadowing.
    pub reconcile: bool,
    /// Aggregation reductions the attached PEs were generated with.
    pub aggregates: Vec<ndp_ir::AggOp>,
    /// Fault policy (retry budget, watchdog, degradation switch).
    pub resilience: ResilienceConfig,
    /// Error/degradation counters since table creation.
    pub health: HealthCounters,
    /// PEs declared hung by the watchdog (skipped until
    /// [`TableExec::reset_failed_pes`]).
    pub pe_failed: Vec<bool>,
}

impl TableExec {
    /// Bring watchdog-failed PEs back into rotation (a device reset /
    /// PL reconfiguration in the real system).
    pub fn reset_failed_pes(&mut self) {
        self.pe_failed.iter_mut().for_each(|f| *f = false);
    }

    /// Number of PEs currently marked failed.
    pub fn failed_pes(&self) -> usize {
        self.pe_failed.iter().filter(|&&f| f).count()
    }

    fn cfg_io(&self, first_block: bool, rules: usize) -> (u64, u64) {
        // Mirrors the PeDriver protocol: rule registers are written once
        // per scan (cached), addresses/len/start per block.
        let per_rule = match self.profile {
            DriverProfile::Generated => 4,
            DriverProfile::Baseline => 3,
        };
        let nop_fills = (self.stages as usize).saturating_sub(rules) as u64;
        let rule_writes = if first_block { per_rule * rules as u64 + nop_fills } else { 0 };
        match self.profile {
            DriverProfile::Generated => {
                (rule_writes + timing::OURS_CFG_WRITES, timing::OURS_CFG_READS)
            }
            DriverProfile::Baseline => {
                (rule_writes + timing::BASE_CFG_WRITES, timing::BASE_CFG_READS)
            }
        }
    }
}

/// One block's worth of hardware filtering (shared by GET and SCAN).
/// Returns `(results, tuples_in, tuples_out, pe_cycles, io_writes,
/// io_reads, bytes_written)`.
#[allow(clippy::too_many_arguments)]
fn hw_filter_block(
    exec: &mut TableExec,
    dram: &mut cosmos_sim::Dram,
    data: &[u8],
    rules: &[FilterRule],
    driver_idx: usize,
    first_block: bool,
    out: &mut Vec<u8>,
) -> (u64, u64, u64, u64, u64, u64) {
    if exec.cycle_accurate {
        let in_addr = driver_idx as u64 * STAGE_STRIDE;
        let out_addr = in_addr + STAGE_OUT_OFF;
        dram.write(in_addr, data);
        let drv = &mut exec.drivers[driver_idx];
        if first_block {
            drv.invalidate_config_cache();
        }
        let job = FilterJob {
            src: in_addr,
            len: data.len() as u32,
            dst: out_addr,
            capacity: (STAGE_STRIDE - STAGE_OUT_OFF) as u32,
            rules: rules.to_vec(),
            aggregate: None,
        };
        let res = drv.filter_sync(&mut DramBus(dram), &job);
        let start = out.len();
        out.resize(start + res.result_bytes as usize, 0);
        dram.read(out_addr, &mut out[start..]);
        (
            u64::from(res.block.tuples_in),
            u64::from(res.tuples_out),
            res.block.cycles,
            res.io.reg_writes,
            res.io.reg_reads,
            u64::from(res.block.bytes_written),
        )
    } else {
        let stats = exec.processor.process_block(data, rules, &exec.ops, out);
        let bytes_written = match exec.profile {
            // The fixed-block baseline always writes whole blocks back.
            DriverProfile::Baseline => u64::from(exec.chunk_bytes),
            DriverProfile::Generated => u64::from(stats.bytes_out),
        };
        let cycles = estimate_block_cycles(
            data.len() as u64,
            u64::from(stats.tuples_in),
            bytes_written,
            exec.stages,
        );
        let (w, r) = exec.cfg_io(first_block, rules.len());
        (u64::from(stats.tuples_in), u64::from(stats.tuples_out), cycles, w, r, bytes_written)
    }
}

/// Full-table SCAN with a filter-rule chain.
///
/// Returns the matched (and reconciled) records plus the report. `now`
/// is the operation start time on the platform clock.
pub fn scan(
    platform: &mut CosmosPlatform,
    lsm: &LsmTree,
    exec: &mut TableExec,
    rules: &[FilterRule],
    mode: ExecMode,
    now: SimNs,
) -> NkvResult<(Vec<u8>, SimReport)> {
    let mut report = SimReport::default();
    let mut results: Vec<u8> = Vec::new();
    let mut matched_keys: Vec<(u64, usize, usize)> = Vec::new(); // (key, rank, result offset)
    let record_bytes = lsm.record_bytes();
    let start = now + platform.firmware.op_overhead_ns();
    let mut op_end = start;
    // Filter rules are written once per PE (the drivers cache them).
    let mut configured = vec![false; exec.pe_servers.len().max(1)];

    // --- C0: the memtable participates in every scan (ARM-side); its
    // matches go through the same transformation as the PE path.
    for (key, entry) in lsm.memtable().iter() {
        if let Entry::Value(rec) = entry {
            report.tuples_in += 1;
            if exec.processor.tuple_passes(rec, rules, &exec.ops) {
                matched_keys.push((key, 0, results.len()));
                exec.processor.transform_into(rec, &mut results);
                report.tuples_out += 1;
            }
        }
    }
    let (_, t) = platform.arm.schedule(
        start,
        timing::ARM_MEMTABLE_PROBE_NS
            + lsm.memtable().len() as u64 * timing::ARM_FILTER_PS_PER_BYTE * record_bytes as u64
                / 1000,
    );
    op_end = op_end.max(t);

    // --- Persistent components: filter every data block.
    let ssts: Vec<SstMeta> = lsm.all_ssts().into_iter().cloned().collect();
    let mut driver_rr = 0usize;
    for (rank, sst) in ssts.iter().enumerate() {
        let rank = rank + 1; // memtable is rank 0
        for bi in 0..sst.blocks.len() {
            // Flash read: issued at `start` (the firmware queues reads
            // across channels); the flash model serializes per resource.
            let (flash_done, data) = read_block_resilient(
                &mut platform.flash,
                &exec.resilience,
                &mut exec.health,
                sst,
                bi,
                start,
            )?;
            report.blocks += 1;
            report.bytes_scanned += data.len() as u64;
            // Stage into DRAM.
            let staged =
                platform.dram.timed_transfer(DramClient::FlashDma, data.len() as u64, flash_done);

            let before = results.len();
            let done = match mode {
                ExecMode::Software => {
                    let stats = exec.processor.process_block(&data, rules, &exec.ops, &mut results);
                    report.tuples_in += u64::from(stats.tuples_in);
                    report.tuples_out += u64::from(stats.tuples_out);
                    arm_filter(platform, staged, data.len() as u64)
                }
                ExecMode::Hardware => {
                    // The fixed-block baseline cannot express partial
                    // blocks; its firmware handles the tail block in
                    // software (see DESIGN.md).
                    let partial = (data.len() as u32) < exec.full_block_payload;
                    let baseline_tail = exec.profile == DriverProfile::Baseline && partial;
                    let healthy = if baseline_tail {
                        None
                    } else {
                        next_healthy_pe(&exec.pe_failed, exec.pe_servers.len(), &mut driver_rr)
                    };
                    match claim_pe(platform, exec, healthy, !baseline_tail)? {
                        PeGrant::Hw(d) => {
                            let (tin, tout, cycles, w, r, bytes_written) = hw_filter_block(
                                exec,
                                &mut platform.dram,
                                &data,
                                rules,
                                d,
                                !configured[d],
                                &mut results,
                            );
                            configured[d] = true;
                            report.tuples_in += tin;
                            report.tuples_out += tout;
                            report.reg_writes += w;
                            report.reg_reads += r;
                            // ARM configures the PE, then the PE streams the
                            // block; load + store both ride the DRAM port.
                            schedule_hw_job(
                                platform,
                                exec,
                                d,
                                staged,
                                cycles,
                                w,
                                r,
                                Some(data.len() as u64),
                                Some(bytes_written),
                            )
                        }
                        PeGrant::Sw { hung } => {
                            // Baseline tail block, a just-hung PE, or no
                            // healthy PE left: ARM software path, charged
                            // the watchdog timeout first on a fresh hang.
                            let stats =
                                exec.processor.process_block(&data, rules, &exec.ops, &mut results);
                            report.tuples_in += u64::from(stats.tuples_in);
                            report.tuples_out += u64::from(stats.tuples_out);
                            arm_filter(
                                platform,
                                sw_resume_at(exec, staged, hung),
                                data.len() as u64,
                            )
                        }
                    }
                }
            };
            op_end = op_end.max(done);
            // Remember matched keys for reconciliation. A result buffer
            // too short for a whole key would mean a PE wrote garbage —
            // surfaced as a typed error, not a slice panic.
            let mut off = before;
            while off < results.len() {
                let key = results
                    .get(off..off + 8)
                    .and_then(|s| <[u8; 8]>::try_from(s).ok())
                    .map(u64::from_le_bytes)
                    .ok_or(NkvError::ResultDecode { offset: off, need: 8, len: results.len() })?;
                matched_keys.push((key, rank, off));
                off += exec.processor.out_tuple_bytes();
            }
        }
    }

    // --- Post-filter reconciliation (shadow check).
    let mut keep = vec![true; matched_keys.len()];
    for (i, &(key, rank, _)) in matched_keys.iter().enumerate() {
        if !exec.reconcile || rank == 0 {
            continue; // memtable is always newest
        }
        if lsm.memtable_get(key).is_some() {
            keep[i] = false;
            continue;
        }
        for newer in lsm.ssts_newer_than(rank - 1) {
            if newer.is_tombstoned(key) {
                keep[i] = false;
                break;
            }
            if newer.may_contain(key) {
                // Bloom hit: confirm with a block read.
                if let Some(bi) = newer.block_for(key) {
                    let (t, data) = read_block_resilient(
                        &mut platform.flash,
                        &exec.resilience,
                        &mut exec.health,
                        newer,
                        bi,
                        op_end,
                    )?;
                    report.shadow_confirm_reads += 1;
                    op_end = op_end.max(t);
                    if search_block(&data, record_bytes, key).is_some() {
                        keep[i] = false;
                        break;
                    }
                }
            }
        }
    }
    let out_bytes = exec.processor.out_tuple_bytes();
    let mut reconciled = Vec::with_capacity(results.len());
    for (i, &(_, _rank, off)) in matched_keys.iter().enumerate() {
        if keep[i] {
            reconciled.extend_from_slice(&results[off..off + out_bytes]);
        }
    }
    report.tuples_out = keep.iter().filter(|&&k| k).count() as u64;

    // --- Host transfer of the result set over NVMe.
    let (nv_start, host_done) = platform.nvme.transfer(op_end, reconciled.len() as u64);
    platform.trace_nvme(nv_start, host_done - nv_start, reconciled.len() as u64);
    op_end = host_done;

    report.result_bytes = reconciled.len() as u64;
    report.sim_ns = op_end - now;
    Ok((reconciled, report))
}

/// Aggregate SCAN: compute one reduction over every record matching the
/// predicate chain, entirely on the device — only the 64-bit accumulator
/// crosses the NVMe link (the paper's outlook on compute-intensive NDP
/// realized: results "much smaller in size than the input data").
///
/// Assumes single-version data (bulk-loaded/compacted tables): a running
/// reduction cannot be reconciled against shadowed versions after the
/// fact, so the caller is responsible for compacting first (checked only
/// by convention; the unit tests cover the supported shape).
#[allow(clippy::too_many_arguments)]
pub fn scan_aggregate(
    platform: &mut CosmosPlatform,
    lsm: &LsmTree,
    exec: &mut TableExec,
    rules: &[FilterRule],
    agg: ndp_ir::AggOp,
    lane: u32,
    mode: ExecMode,
    now: SimNs,
) -> NkvResult<(u64, bool, SimReport)> {
    let mut report = SimReport::default();
    let start = now + platform.firmware.op_overhead_ns();
    let mut op_end = start;
    let mut acc = crate::oracle_acc(&exec.processor, agg, lane)
        .ok_or_else(|| crate::error::NkvError::InvalidLane { table: "<aggregate>".into(), lane })?;

    // Memtable contribution (ARM-side, like scan()).
    for (_, entry) in lsm.memtable().iter() {
        if let Entry::Value(rec) = entry {
            report.tuples_in += 1;
            if exec.processor.tuple_passes(rec, rules, &exec.ops) {
                report.tuples_out += 1;
                if let Some(v) = exec.processor.lane_value(rec, lane) {
                    acc.update(v);
                }
            }
        }
    }
    let (_, t) = platform.arm.schedule(
        start,
        timing::ARM_MEMTABLE_PROBE_NS
            + lsm.memtable().len() as u64
                * timing::ARM_FILTER_PS_PER_BYTE
                * lsm.record_bytes() as u64
                / 1000,
    );
    op_end = op_end.max(t);

    let ssts: Vec<SstMeta> = lsm.all_ssts().into_iter().cloned().collect();
    let mut driver_rr = 0usize;
    let mut configured = vec![false; exec.pe_servers.len().max(1)];
    for sst in &ssts {
        for bi in 0..sst.blocks.len() {
            let (flash_done, data) = read_block_resilient(
                &mut platform.flash,
                &exec.resilience,
                &mut exec.health,
                sst,
                bi,
                start,
            )?;
            report.blocks += 1;
            report.bytes_scanned += data.len() as u64;
            let staged =
                platform.dram.timed_transfer(DramClient::FlashDma, data.len() as u64, flash_done);
            let done = match mode {
                ExecMode::Software => {
                    for tuple in data.chunks_exact(exec.processor.in_tuple_bytes()) {
                        report.tuples_in += 1;
                        if exec.processor.tuple_passes(tuple, rules, &exec.ops) {
                            report.tuples_out += 1;
                            if let Some(v) = exec.processor.lane_value(tuple, lane) {
                                acc.update(v);
                            }
                        }
                    }
                    arm_filter(platform, staged, data.len() as u64)
                }
                ExecMode::Hardware => {
                    // Functional result via the shared accumulator; counts
                    // and timing like the filtering path, but with zero
                    // result write-back (the aggregate stays in a register).
                    let mut tin = 0u64;
                    let mut tout = 0u64;
                    for tuple in data.chunks_exact(exec.processor.in_tuple_bytes()) {
                        tin += 1;
                        if exec.processor.tuple_passes(tuple, rules, &exec.ops) {
                            tout += 1;
                            if let Some(v) = exec.processor.lane_value(tuple, lane) {
                                acc.update(v);
                            }
                        }
                    }
                    report.tuples_in += tin;
                    report.tuples_out += tout;
                    let healthy =
                        next_healthy_pe(&exec.pe_failed, exec.pe_servers.len(), &mut driver_rr);
                    match claim_pe(platform, exec, healthy, true)? {
                        PeGrant::Hw(d) => {
                            let (mut w, r) = exec.cfg_io(!configured[d], rules.len());
                            if !configured[d] {
                                w += 2; // AGG_FIELD + AGG_OP
                            }
                            configured[d] = true;
                            // +2 reads: the 64-bit accumulator halves.
                            let r = r + 2;
                            report.reg_writes += w;
                            report.reg_reads += r;
                            let cycles =
                                estimate_block_cycles(data.len() as u64, tin, 0, exec.stages);
                            // Aggregates never store: the result stays in a
                            // register, so the job ends at PE-done.
                            schedule_hw_job(
                                platform,
                                exec,
                                d,
                                staged,
                                cycles,
                                w,
                                r,
                                Some(data.len() as u64),
                                None,
                            )
                        }
                        PeGrant::Sw { hung } => {
                            // Hung or exhausted PEs: the ARM re-reduces the
                            // staged block (the accumulator above is already
                            // correct — only time differs).
                            arm_filter(
                                platform,
                                sw_resume_at(exec, staged, hung),
                                data.len() as u64,
                            )
                        }
                    }
                }
            };
            op_end = op_end.max(done);
        }
    }

    // Only the accumulator travels to the host.
    let (nv_start, host_done) = platform.nvme.transfer(op_end, 8);
    platform.trace_nvme(nv_start, host_done - nv_start, 8);
    report.result_bytes = 8;
    report.sim_ns = host_done - now;
    Ok((acc.value(), acc.any(), report))
}

/// Point lookup (GET).
pub fn get(
    platform: &mut CosmosPlatform,
    lsm: &LsmTree,
    exec: &mut TableExec,
    key: u64,
    mode: ExecMode,
    now: SimNs,
) -> NkvResult<(Option<Vec<u8>>, SimReport)> {
    let mut report = SimReport::default();
    let mut t = now + platform.firmware.op_overhead_ns();

    // C0 probe.
    let (_, tt) = platform.arm.schedule(t, timing::ARM_MEMTABLE_PROBE_NS);
    t = tt;
    match lsm.memtable_get(key) {
        Some(Entry::Value(v)) => {
            report.sim_ns = t - now;
            return Ok((Some(v.clone()), report));
        }
        Some(Entry::Tombstone) => {
            report.sim_ns = t - now;
            return Ok((None, report));
        }
        None => {}
    }

    // Persistent components: index walk is sequential (the next lookup
    // target depends on the previous miss).
    let candidates: Vec<SstMeta> = lsm.candidate_ssts(key).into_iter().cloned().collect();
    for sst in &candidates {
        // Index block read + parse on the ARM (same retry policy as data
        // blocks; the page content is already cached in `sst`).
        if let Some(&page) = sst.index_pages.first() {
            let idx_done = read_index_page_resilient(
                platform,
                &exec.resilience,
                &mut exec.health,
                sst.id,
                page,
                t,
            )?;
            let (_, parsed) = platform.arm.schedule(idx_done, 2_000);
            t = parsed;
        }
        if sst.is_tombstoned(key) {
            report.sim_ns = t - now;
            return Ok((None, report));
        }
        if !sst.may_contain(key) {
            continue;
        }
        let Some(bi) = sst.block_for(key) else { continue };
        let (flash_done, data) = read_block_resilient(
            &mut platform.flash,
            &exec.resilience,
            &mut exec.health,
            sst,
            bi,
            t,
        )?;
        report.blocks += 1;
        report.bytes_scanned += data.len() as u64;
        let staged =
            platform.dram.timed_transfer(DramClient::FlashDma, data.len() as u64, flash_done);

        let (found, done) = match mode {
            ExecMode::Software => {
                let rec = search_block(&data, lsm.record_bytes(), key).map(<[u8]>::to_vec);
                let (_, done) = platform.arm.schedule(staged, timing::ARM_BLOCK_SEARCH_NS);
                (rec, done)
            }
            ExecMode::Hardware => {
                // GET always targets PE 0 (one block, no parallelism to
                // exploit); a retired or freshly hung PE 0 degrades the
                // search to the ARM, like the SCAN path.
                let pe_down = exec.pe_failed.first().copied().unwrap_or(false);
                let candidate = if pe_down { None } else { Some(0) };
                match claim_pe(platform, exec, candidate, true)? {
                    PeGrant::Sw { hung } => {
                        let rec = search_block(&data, lsm.record_bytes(), key).map(<[u8]>::to_vec);
                        let (_, done) = platform.arm.schedule(
                            sw_resume_at(exec, staged, hung),
                            timing::ARM_BLOCK_SEARCH_NS,
                        );
                        (rec, done)
                    }
                    PeGrant::Hw(d) => {
                        // Key-equality filter on the PE; every GET reconfigures
                        // the reference value, so no rule caching applies.
                        let rules =
                            [FilterRule { lane: 0, op_code: eq_code(&exec.ops), value: key }];
                        let mut out = Vec::new();
                        let (tin, tout, cycles, w, r, bytes_written) = hw_filter_block(
                            exec,
                            &mut platform.dram,
                            &data,
                            &rules,
                            d,
                            true,
                            &mut out,
                        );
                        report.tuples_in += tin;
                        report.tuples_out += tout;
                        report.reg_writes += w;
                        report.reg_reads += r;
                        // GET has no PE load phase in the model (the block is
                        // already staged for the search); only the one-record
                        // store rides the DRAM port.
                        let done = schedule_hw_job(
                            platform,
                            exec,
                            d,
                            staged,
                            cycles,
                            w,
                            r,
                            None,
                            Some(bytes_written),
                        );
                        let rec = if out.is_empty() {
                            None
                        } else {
                            let n = lsm.record_bytes();
                            Some(
                                out.get(..n)
                                    .ok_or(NkvError::ResultDecode {
                                        offset: 0,
                                        need: n,
                                        len: out.len(),
                                    })?
                                    .to_vec(),
                            )
                        };
                        (rec, done)
                    }
                }
            }
        };
        t = done;
        if let Some(rec) = found {
            let (nv_start, host) = platform.nvme.transfer(t, rec.len() as u64);
            platform.trace_nvme(nv_start, host - nv_start, rec.len() as u64);
            report.sim_ns = host - now;
            return Ok((Some(rec), report));
        }
    }
    report.sim_ns = t - now;
    Ok((None, report))
}

/// The `eq` operator code of a table's op set (always present in the
/// standard set; panics if a custom-only set removed it).
fn eq_code(_ops: &OpTable) -> u32 {
    // The standard encoding from ndp-ir: nop=0, ne=1, eq=2.
    2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lsm::LsmConfig;
    use crate::placement::PageAllocator;
    use cosmos_sim::CosmosConfig;
    use ndp_ir::elaborate;
    use ndp_pe::{BaselinePe, PeSim};
    use ndp_spec::parse;
    use ndp_workload::spec::{ref_lanes, PAPER_REF_SPEC, REF_PE};
    use ndp_workload::{PubGraphConfig, Ref, RefGen};

    fn make_exec(n_pes: usize, baseline: bool, cycle_accurate: bool) -> TableExec {
        let m = parse(PAPER_REF_SPEC).unwrap();
        let cfg = elaborate(&m, REF_PE).unwrap();
        let processor = BlockProcessor::new(&cfg);
        let ops = OpTable::from_config(&cfg);
        let full_block_payload = (cfg.chunk_bytes / 20) * 20;
        let mut drivers: Vec<PeDriver<Box<dyn PeDevice>>> = Vec::new();
        for _ in 0..n_pes {
            let dev: Box<dyn PeDevice> = if baseline {
                Box::new(BaselinePe::new(cfg.clone()).unwrap())
            } else {
                Box::new(PeSim::new(cfg.clone()))
            };
            drivers.push(PeDriver::new(
                dev,
                if baseline { DriverProfile::Baseline } else { DriverProfile::Generated },
            ));
        }
        TableExec {
            processor,
            ops,
            drivers,
            pe_servers: vec![Server::new(); n_pes],
            profile: if baseline { DriverProfile::Baseline } else { DriverProfile::Generated },
            stages: cfg.stages,
            cycle_accurate,
            full_block_payload,
            chunk_bytes: cfg.chunk_bytes,
            reconcile: true,
            aggregates: cfg.aggregates.clone(),
            resilience: ResilienceConfig::default(),
            health: HealthCounters::default(),
            pe_failed: vec![false; n_pes],
        }
    }

    /// Load refs with unique `src` fields (the record key must be its
    /// first 8 bytes); returns the tree and the load-completion time.
    fn loaded_lsm(
        platform: &mut CosmosPlatform,
        alloc: &mut PageAllocator,
        n_refs: u64,
    ) -> (LsmTree, u64) {
        let mut lsm = LsmTree::new("refs", 20, LsmConfig::default(), 3);
        let cfg = PubGraphConfig { papers: n_refs / 10 + 1, refs: n_refs, seed: 11 };
        let mut buf = Vec::new();
        let mut done = 0u64;
        for (i, mut r) in RefGen::new(cfg).enumerate() {
            r.src = i as u64 + 1; // unique key in the record's first field
            buf.clear();
            r.encode_into(&mut buf);
            lsm.put(r.src, buf.clone());
            if lsm.should_flush() {
                done = done.max(lsm.flush(&mut platform.flash, alloc, 0).unwrap());
            }
        }
        done = done.max(lsm.flush(&mut platform.flash, alloc, 0).unwrap());
        (lsm, done)
    }

    fn scan_year_rules(exec: &TableExec, year: u64) -> Vec<FilterRule> {
        let _ = exec;
        vec![FilterRule { lane: ref_lanes::YEAR, op_code: 4 /* ge */, value: year }]
    }

    #[test]
    fn sw_and_hw_scans_return_identical_results() {
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let (lsm, t0) = loaded_lsm(&mut platform, &mut alloc, 5_000);
        let mut exec = make_exec(2, false, false);
        let rules = scan_year_rules(&exec, 2000);

        let (sw, rep_sw) =
            scan(&mut platform, &lsm, &mut exec, &rules, ExecMode::Software, t0).unwrap();
        let (hw, rep_hw) =
            scan(&mut platform, &lsm, &mut exec, &rules, ExecMode::Hardware, t0 + rep_sw.sim_ns)
                .unwrap();
        assert_eq!(sw, hw);
        assert!(!sw.is_empty());
        assert_eq!(rep_sw.tuples_out, rep_hw.tuples_out);
        // Every result record satisfies the predicate.
        for rec in sw.chunks_exact(20) {
            assert!(Ref::decode(rec).year >= 2000);
        }
    }

    #[test]
    fn hw_scan_is_faster_than_sw_scan() {
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let (lsm, t0) = loaded_lsm(&mut platform, &mut alloc, 20_000);
        let mut exec = make_exec(4, false, false);
        let rules = scan_year_rules(&exec, 1990);

        let mut p1 = CosmosPlatform::new(CosmosConfig::default());
        p1.flash = platform.flash.clone();
        let (_, sw) = scan(&mut p1, &lsm, &mut exec, &rules, ExecMode::Software, t0).unwrap();
        let mut p2 = CosmosPlatform::new(CosmosConfig::default());
        p2.flash = platform.flash.clone();
        let (_, hw) = scan(&mut p2, &lsm, &mut exec, &rules, ExecMode::Hardware, t0).unwrap();
        assert!(hw.sim_ns < sw.sim_ns, "HW {} ns should beat SW {} ns", hw.sim_ns, sw.sim_ns);
    }

    #[test]
    fn cycle_accurate_and_fast_hw_agree() {
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let (lsm, t0) = loaded_lsm(&mut platform, &mut alloc, 3_000);
        let rules = vec![FilterRule { lane: ref_lanes::YEAR, op_code: 4, value: 1995 }];

        let mut fast = make_exec(2, false, false);
        let mut acc = make_exec(2, false, true);
        let mut p1 = CosmosPlatform::new(CosmosConfig::default());
        p1.flash = platform.flash.clone();
        let (r_fast, rep_fast) =
            scan(&mut p1, &lsm, &mut fast, &rules, ExecMode::Hardware, t0).unwrap();
        let mut p2 = CosmosPlatform::new(CosmosConfig::default());
        p2.flash = platform.flash.clone();
        let (r_acc, rep_acc) =
            scan(&mut p2, &lsm, &mut acc, &rules, ExecMode::Hardware, t0).unwrap();

        assert_eq!(r_fast, r_acc, "functional results must be identical");
        assert_eq!(rep_fast.tuples_in, rep_acc.tuples_in);
        assert_eq!(rep_fast.tuples_out, rep_acc.tuples_out);
        assert_eq!(rep_fast.reg_writes, rep_acc.reg_writes);
        assert_eq!(rep_fast.reg_reads, rep_acc.reg_reads);
        let dt = rep_fast.sim_ns.abs_diff(rep_acc.sim_ns) as f64;
        assert!(
            dt / (rep_acc.sim_ns as f64) < 0.05,
            "fast {} vs accurate {}",
            rep_fast.sim_ns,
            rep_acc.sim_ns
        );
    }

    #[test]
    fn baseline_hw_matches_generated_results_with_more_write_traffic() {
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let (lsm, t0) = loaded_lsm(&mut platform, &mut alloc, 8_000);
        let rules = vec![FilterRule { lane: ref_lanes::YEAR, op_code: 4, value: 2000 }];

        let mut ours = make_exec(2, false, false);
        let mut base = make_exec(2, true, false);
        let mut p1 = CosmosPlatform::new(CosmosConfig::default());
        p1.flash = platform.flash.clone();
        let (r1, _) = scan(&mut p1, &lsm, &mut ours, &rules, ExecMode::Hardware, t0).unwrap();
        let pe_store_ours = p1.dram.traffic_of(DramClient::PeStore);
        let mut p2 = CosmosPlatform::new(CosmosConfig::default());
        p2.flash = platform.flash.clone();
        let (r2, _) = scan(&mut p2, &lsm, &mut base, &rules, ExecMode::Hardware, t0).unwrap();
        let pe_store_base = p2.dram.traffic_of(DramClient::PeStore);

        assert_eq!(r1, r2);
        assert!(
            pe_store_base > pe_store_ours,
            "fixed 32 KiB write-back must cause more DRAM traffic \
             ({pe_store_base} vs {pe_store_ours})"
        );
    }

    #[test]
    fn scan_reconciles_shadowed_versions() {
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let mut lsm = LsmTree::new("refs", 20, LsmConfig::default(), 3);
        // Old version of key 100 matches the predicate... (the record's
        // first field IS the key, per the nKV record model)
        let old = Ref { src: 100, dst: 1, year: 2010 };
        let mut buf = Vec::new();
        old.encode_into(&mut buf);
        lsm.put(old.src, buf.clone());
        lsm.flush(&mut platform.flash, &mut alloc, 0).unwrap();
        // ... the newer version does NOT match.
        let newer = Ref { src: 100, dst: 1, year: 1960 };
        buf.clear();
        newer.encode_into(&mut buf);
        lsm.put(newer.src, buf.clone());
        lsm.flush(&mut platform.flash, &mut alloc, 0).unwrap();
        // And key 200's newest version matches.
        let live = Ref { src: 200, dst: 2, year: 2015 };
        buf.clear();
        live.encode_into(&mut buf);
        lsm.put(live.src, buf.clone());
        lsm.flush(&mut platform.flash, &mut alloc, 0).unwrap();

        let mut exec = make_exec(1, false, false);
        let rules = vec![FilterRule { lane: ref_lanes::YEAR, op_code: 4, value: 2000 }];
        let (res, rep) =
            scan(&mut platform, &lsm, &mut exec, &rules, ExecMode::Software, 0).unwrap();
        // Only key 200's record: key 100's matching version is shadowed.
        assert_eq!(res.len(), 20);
        assert_eq!(Ref::decode(&res).year, 2015);
        assert_eq!(rep.tuples_out, 1);
        assert!(rep.shadow_confirm_reads > 0, "bloom hit on key 100 must be confirmed");
    }

    #[test]
    fn scan_includes_memtable_and_respects_its_tombstones() {
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let mut lsm = LsmTree::new("refs", 20, LsmConfig::default(), 3);
        let mut buf = Vec::new();
        Ref { src: 1, dst: 9, year: 2005 }.encode_into(&mut buf);
        lsm.put(1, buf.clone());
        lsm.flush(&mut platform.flash, &mut alloc, 0).unwrap();
        // Unflushed matching record in the memtable...
        buf.clear();
        Ref { src: 2, dst: 9, year: 2012 }.encode_into(&mut buf);
        lsm.put(2, buf.clone());
        // ... and delete the flushed one.
        lsm.delete(1);

        let mut exec = make_exec(1, false, false);
        let rules = vec![FilterRule { lane: ref_lanes::YEAR, op_code: 4, value: 2000 }];
        let (res, _) = scan(&mut platform, &lsm, &mut exec, &rules, ExecMode::Software, 0).unwrap();
        assert_eq!(res.len(), 20);
        assert_eq!(Ref::decode(&res).year, 2012);
    }

    #[test]
    fn get_finds_and_misses_in_both_modes() {
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let (lsm, t0) = loaded_lsm(&mut platform, &mut alloc, 5_000);
        let mut exec = make_exec(1, false, false);
        // Pick an existing key from the data.
        let sst = &lsm.all_ssts()[0];
        let key = sst.blocks[0].first_key;
        let (sw, rep_sw) =
            get(&mut platform, &lsm, &mut exec, key, ExecMode::Software, t0).unwrap();
        let (hw, rep_hw) =
            get(&mut platform, &lsm, &mut exec, key, ExecMode::Hardware, t0 + rep_sw.sim_ns)
                .unwrap();
        assert!(sw.is_some());
        assert_eq!(sw, hw);
        assert!(rep_sw.sim_ns > 0 && rep_hw.sim_ns > 0);

        let (miss, _) =
            get(&mut platform, &lsm, &mut exec, u64::MAX - 1, ExecMode::Software, t0).unwrap();
        assert_eq!(miss, None);
    }

    #[test]
    fn get_hw_does_not_profit_over_sw() {
        // Fig. 7(a): configuration overhead eats the PE's advantage.
        let mut platform = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(platform.flash.config());
        let (lsm, t0) = loaded_lsm(&mut platform, &mut alloc, 20_000);
        let sst = &lsm.all_ssts()[0];
        let key = sst.blocks[1].first_key;

        let mut exec = make_exec(1, false, false);
        let mut p1 = CosmosPlatform::new(CosmosConfig::default());
        p1.flash = platform.flash.clone();
        let (_, sw) = get(&mut p1, &lsm, &mut exec, key, ExecMode::Software, t0).unwrap();
        let mut p2 = CosmosPlatform::new(CosmosConfig::default());
        p2.flash = platform.flash.clone();
        let (_, hw) = get(&mut p2, &lsm, &mut exec, key, ExecMode::Hardware, t0).unwrap();
        let ratio = hw.sim_ns as f64 / sw.sim_ns as f64;
        assert!(
            (0.8..1.5).contains(&ratio),
            "GET HW/SW ratio {ratio:.2} should be near 1 (no real benefit)"
        );
    }

    #[test]
    fn firmware_era_adds_op_overhead() {
        let mut loaded = CosmosPlatform::new(CosmosConfig::default());
        let mut alloc = PageAllocator::new(loaded.flash.config());
        let (lsm, t0) = loaded_lsm(&mut loaded, &mut alloc, 5_000);
        let mut original = CosmosPlatform::new(CosmosConfig {
            firmware: cosmos_sim::FirmwareEra::Original,
            ..CosmosConfig::default()
        });
        original.flash = loaded.flash.clone();
        let mut updated = CosmosPlatform::new(CosmosConfig::default());
        updated.flash = loaded.flash.clone();
        let sst = &lsm.all_ssts()[0];
        let key = sst.blocks[0].first_key;
        let mut exec = make_exec(1, false, false);
        let (_, rep_orig) =
            get(&mut original, &lsm, &mut exec, key, ExecMode::Software, t0).unwrap();
        let (_, rep_upd) = get(&mut updated, &lsm, &mut exec, key, ExecMode::Software, t0).unwrap();
        assert_eq!(
            rep_upd.sim_ns - rep_orig.sim_ns,
            timing::FIRMWARE_OP_OVERHEAD_NS,
            "updated firmware charges exactly the per-op overhead"
        );
    }
}
