//! Physical data placement.
//!
//! nKV controls where data lands in flash: "By distributing data on
//! independent Flash channels and LUNs, nKV facilitates parallel access
//! and processing of data. Moreover, keeping the data of different
//! LSM-tree index components separated on different Flash chips avoids
//! blocking of the entire bus by compaction jobs" (paper, Sec. III-B).
//!
//! The allocator stripes consecutive pages of a block across the LUNs of
//! one channel (overlapping tR), stripes consecutive *blocks* across
//! channels (parallel scans), and partitions LUNs between LSM levels.

use cosmos_sim::{FlashConfig, PhysAddr};

/// Allocates physical pages for SST blocks.
pub struct PageAllocator {
    channels: u16,
    luns: u16,
    pages_per_lun: u32,
    /// Next free page per (channel, lun).
    next_page: Vec<u32>,
    /// Round-robin channel cursor per level class.
    cursor: Vec<u16>,
}

/// How many level classes get separated LUN groups (level 0/1 hot vs
/// deeper cold levels).
const LEVEL_CLASSES: usize = 2;

impl PageAllocator {
    /// Build an allocator for the given flash geometry.
    pub fn new(cfg: &FlashConfig) -> Self {
        Self {
            channels: cfg.channels,
            luns: cfg.luns_per_channel,
            pages_per_lun: cfg.pages_per_lun,
            next_page: vec![0; usize::from(cfg.channels) * usize::from(cfg.luns_per_channel)],
            cursor: vec![0; LEVEL_CLASSES],
        }
    }

    fn class_of(level: usize) -> usize {
        usize::from(level > 1)
    }

    /// LUN range assigned to a level class: hot levels use the lower
    /// half of each channel's LUNs, cold levels the upper half, so a
    /// compaction streaming cold data never parks the hot LUNs.
    fn lun_range(&self, class: usize) -> (u16, u16) {
        let half = (self.luns / 2).max(1);
        if class == 0 || self.luns < 2 {
            (0, half)
        } else {
            (half, self.luns)
        }
    }

    /// Allocate `n` pages for one block of an SST at `level`, striped
    /// across the LUNs of a single channel. Consecutive calls rotate
    /// channels so consecutive blocks land on different channels.
    /// Returns `None` when flash is exhausted.
    pub fn alloc_block(&mut self, level: usize, n: usize) -> Option<Vec<PhysAddr>> {
        let class = Self::class_of(level);
        let (lun_lo, lun_hi) = self.lun_range(class);
        let lun_count = lun_hi - lun_lo;
        // Try every channel starting at the cursor.
        for attempt in 0..self.channels {
            let channel = (self.cursor[class] + attempt) % self.channels;
            // Stripe the n pages over the class's LUNs of this channel.
            let mut pages = Vec::with_capacity(n);
            let mut ok = true;
            // Snapshot next_page so a failed attempt does not leak pages.
            let base: Vec<u32> =
                (lun_lo..lun_hi).map(|l| self.next_page[self.slot(channel, l)]).collect();
            let mut next = base.clone();
            for i in 0..n {
                let li = (i as u16) % lun_count;
                let lun = lun_lo + li;
                let page = next[usize::from(li)];
                if page >= self.pages_per_lun {
                    ok = false;
                    break;
                }
                next[usize::from(li)] += 1;
                pages.push(PhysAddr { channel, lun, page });
            }
            if ok {
                for (li, &np) in next.iter().enumerate() {
                    let slot = self.slot(channel, lun_lo + li as u16);
                    self.next_page[slot] = np;
                }
                self.cursor[class] = (channel + 1) % self.channels;
                return Some(pages);
            }
        }
        None
    }

    /// Mark a page as in use (recovery: advance the watermark past every
    /// page referenced by recovered metadata).
    pub fn mark_used(&mut self, addr: cosmos_sim::PhysAddr) {
        let slot = self.slot(addr.channel, addr.lun);
        if addr.page >= self.next_page[slot] {
            self.next_page[slot] = addr.page + 1;
        }
    }

    fn slot(&self, channel: u16, lun: u16) -> usize {
        usize::from(channel) * usize::from(self.luns) + usize::from(lun)
    }

    /// Free pages remaining (approximate, for diagnostics).
    pub fn free_pages(&self) -> u64 {
        self.next_page.iter().map(|&used| u64::from(self.pages_per_lun - used)).sum()
    }
}

/// Which of `workers` parallel scan streams owns flash channel
/// `channel`: channels are split into contiguous groups, one group per
/// worker (the allocator stripes consecutive blocks across channels, so
/// contiguous groups balance block counts). With more workers than
/// channels the extra workers simply receive no channels.
pub fn worker_for_channel(channel: u16, channels: u16, workers: usize) -> usize {
    let channels = usize::from(channels).max(1);
    let workers = workers.max(1);
    (usize::from(channel) * workers / channels).min(workers - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> PageAllocator {
        PageAllocator::new(&FlashConfig::default())
    }

    #[test]
    fn block_pages_stripe_luns_of_one_channel() {
        let mut a = alloc();
        let pages = a.alloc_block(1, 4).unwrap();
        assert_eq!(pages.len(), 4);
        let ch = pages[0].channel;
        assert!(pages.iter().all(|p| p.channel == ch));
        let luns: std::collections::HashSet<u16> = pages.iter().map(|p| p.lun).collect();
        assert!(luns.len() > 1, "pages should spread over LUNs: {pages:?}");
    }

    #[test]
    fn consecutive_blocks_rotate_channels() {
        let mut a = alloc();
        let c1 = a.alloc_block(1, 4).unwrap()[0].channel;
        let c2 = a.alloc_block(1, 4).unwrap()[0].channel;
        let c3 = a.alloc_block(1, 4).unwrap()[0].channel;
        assert_ne!(c1, c2);
        assert_ne!(c2, c3);
    }

    #[test]
    fn hot_and_cold_levels_use_disjoint_luns() {
        let mut a = alloc();
        let hot = a.alloc_block(1, 8).unwrap();
        let cold = a.alloc_block(3, 8).unwrap();
        let hot_luns: std::collections::HashSet<u16> = hot.iter().map(|p| p.lun).collect();
        let cold_luns: std::collections::HashSet<u16> = cold.iter().map(|p| p.lun).collect();
        assert!(hot_luns.is_disjoint(&cold_luns), "hot {hot_luns:?} vs cold {cold_luns:?}");
    }

    #[test]
    fn allocations_never_overlap() {
        let mut a = alloc();
        let mut seen = std::collections::HashSet::new();
        for level in [0usize, 1, 2, 5] {
            for _ in 0..50 {
                for p in a.alloc_block(level, 4).unwrap() {
                    assert!(seen.insert(p), "page {p:?} allocated twice");
                }
            }
        }
    }

    #[test]
    fn exhaustion_returns_none() {
        let cfg = FlashConfig {
            channels: 2,
            luns_per_channel: 2,
            pages_per_lun: 4,
            ..FlashConfig::default()
        };
        let mut a = PageAllocator::new(&cfg);
        let mut got = 0;
        while a.alloc_block(0, 2).is_some() {
            got += 1;
            assert!(got < 100, "allocator never exhausts");
        }
        // Hot class = lower half of LUNs = 1 LUN per channel × 4 pages
        // × 2 channels = 8 pages = 4 blocks of 2.
        assert_eq!(got, 4);
    }

    #[test]
    fn mark_used_advances_watermark() {
        let mut a = alloc();
        a.mark_used(cosmos_sim::PhysAddr { channel: 3, lun: 1, page: 41 });
        // Subsequent allocations on that LUN start above the mark.
        for _ in 0..100 {
            if let Some(pages) = a.alloc_block(0, 4) {
                for p in pages {
                    assert!(
                        !(p.channel == 3 && p.lun == 1 && p.page <= 41),
                        "allocated over recovered data: {p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn free_pages_decreases() {
        let mut a = alloc();
        let before = a.free_pages();
        a.alloc_block(0, 4).unwrap();
        assert_eq!(a.free_pages(), before - 4);
    }

    #[test]
    fn worker_partition_is_contiguous_and_balanced() {
        // 8 channels over 4 workers: pairs {0,1} {2,3} {4,5} {6,7}.
        let owners: Vec<usize> = (0..8).map(|c| worker_for_channel(c, 8, 4)).collect();
        assert_eq!(owners, vec![0, 0, 1, 1, 2, 2, 3, 3]);
        // One worker owns everything.
        assert!((0..8).all(|c| worker_for_channel(c, 8, 1) == 0));
        // Workers beyond the channel count stay within bounds.
        for c in 0..8 {
            assert!(worker_for_channel(c, 8, 16) < 16);
        }
        // Every channel maps to a valid worker for odd splits too.
        for w in 1..=5usize {
            for c in 0..8 {
                assert!(worker_for_channel(c, 8, w) < w);
            }
        }
    }
}
