//! Multi-tenant queued command execution.
//!
//! The serial [`NkvDb`] API issues one operation at a time: each op
//! starts at the device clock and the clock jumps to its end, so two
//! clients can never overlap on the device — the "millions of users"
//! regime the paper's near-data PEs exist for has no code path. This
//! module adds it: [`NkvDb::run_queued`] admits a *window* of in-flight
//! GET/SCAN/PUT commands per client through the platform's NVMe queue
//! pairs ([`cosmos_sim::queue`]) and dispatches them onto the shared
//! FCFS resource timelines (flash channels/LUNs, PE pool, ARM, DRAM
//! port, NVMe link). Commands that touch disjoint resources overlap and
//! may complete out of submission order; commands that contend queue up
//! exactly as the hardware would.
//!
//! The engine is a closed-loop scheduler in simulated time. Every
//! client starts with `depth` commands outstanding; when one completes,
//! the client submits its next. Dispatch order is a deterministic
//! min-heap on `(submit_ns, client, seq)`, and because each command is
//! expanded on the timeline the moment it is popped, submission times
//! seen by the FCFS servers are monotonically non-decreasing — the run
//! is exactly reproducible for a given database state and script set.
//!
//! With one client at depth 1 the engine degenerates to the serial
//! path: every command begins after the previous one fully completed,
//! so per-command execution times equal the serial API's `SimReport`
//! times exactly (asserted in `tests/queue_engine.rs`).

use crate::db::NkvDb;
use crate::error::{NkvError, NkvResult};
use crate::exec::ExecMode;
use crate::metrics::{LatencyHistogram, OpKind};
use cosmos_sim::queue::{NvmeQueueConfig, QueueStats};
use cosmos_sim::{ns_to_secs, SimNs};
use ndp_pe::oracle::FilterRule;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One queued command.
#[derive(Debug, Clone)]
pub enum QueuedOp {
    /// Point lookup.
    Get { key: u64 },
    /// Predicate SCAN over the whole table.
    Scan { rules: Vec<FilterRule> },
    /// Insert/update one record (key = first 8 bytes, little endian).
    Put { record: Vec<u8> },
}

/// Scheduling class of one client's commands (QoS). Dispatch is a
/// deterministic min-heap on `(submit_ns, priority rank, client, seq)`:
/// among commands ready at the same instant, a higher class is expanded
/// onto the device timelines first, so latency-sensitive GETs overtake
/// bulk analytics scans *at dispatch* while per-client FIFO order (the
/// class is per client) and seeded determinism are untouched. A run
/// whose clients are all [`Priority::Normal`] orders exactly like the
/// pre-QoS engine, bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Priority {
    /// Latency-sensitive foreground work (point lookups).
    High,
    /// The default class; alone, it reproduces the legacy FIFO order.
    #[default]
    Normal,
    /// Background/bulk analytics that may yield to the other classes.
    Bulk,
}

impl Priority {
    /// Heap rank: lower dispatches first at equal submit times.
    pub(crate) fn rank(self) -> u8 {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Bulk => 2,
        }
    }

    /// Render name (bench tables).
    pub fn name(self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Bulk => "bulk",
        }
    }
}

/// The ordered command list one client will issue.
#[derive(Debug, Clone, Default)]
pub struct ClientScript {
    pub ops: Vec<QueuedOp>,
    /// QoS class applied to every command of this client.
    pub priority: Priority,
}

/// Parameters of one queued run.
#[derive(Debug, Clone)]
pub struct QueueRunConfig {
    /// Per-client window: commands kept in flight by each client.
    pub depth: u32,
    /// Execution mode for GET/SCAN (hardware PEs or ARM software).
    pub mode: ExecMode,
    /// NVMe queue geometry exposed by the controller for the run.
    pub queues: NvmeQueueConfig,
    /// Auto-batching limit: up to this many *adjacent* queued GETs of
    /// one client are folded into a single batched-GET physical op (one
    /// key-list descriptor, one PE configuration, coalesced doorbells).
    /// `1` (the default) disables folding — the run takes the legacy
    /// per-command code path, bit for bit.
    pub batch: u32,
}

impl Default for QueueRunConfig {
    fn default() -> Self {
        Self { depth: 8, mode: ExecMode::Hardware, queues: NvmeQueueConfig::default(), batch: 1 }
    }
}

/// Everything known about one completed command.
#[derive(Debug, Clone, PartialEq)]
pub struct CommandRecord {
    pub client: u32,
    /// Index into the client's script.
    pub seq: u32,
    /// Queue pair the command went through.
    pub qid: u16,
    pub kind: OpKind,
    /// When the client rang the SQ doorbell (after any full-queue stall).
    pub submit_ns: SimNs,
    /// When the controller finished fetching the SQE (execution start).
    pub fetch_ns: SimNs,
    /// When the command's device-side execution finished.
    pub exec_done_ns: SimNs,
    /// When the host observed the completion entry.
    pub complete_ns: SimNs,
    /// Device-side execution time (`exec_done_ns - fetch_ns`).
    pub exec_ns: SimNs,
    /// Result size (GET/SCAN payload or PUT record size).
    pub result_bytes: u64,
    /// GET: the matched record (empty on miss); SCAN: matched records;
    /// PUT: empty.
    pub payload: Vec<u8>,
}

/// Outcome of one [`NkvDb::run_queued`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueRunReport {
    /// Every command, in completion order (ties broken by client, seq).
    pub completions: Vec<CommandRecord>,
    /// Device clock when the run began.
    pub started_ns: SimNs,
    /// Completion time of the last command (equals `started_ns` for an
    /// empty run).
    pub finished_ns: SimNs,
    /// Submit→complete latency across all commands.
    pub latency: LatencyHistogram,
    /// Queue-pair counters summed over the run.
    pub queue: QueueStats,
}

impl QueueRunReport {
    /// Commands completed.
    pub fn ops(&self) -> u64 {
        self.completions.len() as u64
    }

    /// Completed commands per second of simulated time.
    pub fn throughput_ops_per_sec(&self) -> f64 {
        let span = self.finished_ns.saturating_sub(self.started_ns);
        if span == 0 {
            0.0
        } else {
            self.ops() as f64 / ns_to_secs(span)
        }
    }

    /// `(client, seq)` pairs in completion order — the out-of-order
    /// witness used by the determinism tests.
    pub fn completion_order(&self) -> Vec<(u32, u32)> {
        self.completions.iter().map(|c| (c.client, c.seq)).collect()
    }
}

impl NkvDb {
    /// Run every client's script to completion through the NVMe queue
    /// engine, keeping up to `cfg.depth` commands in flight per client.
    /// Returns per-command records merged across clients in completion
    /// order; the device clock advances to the last completion.
    ///
    /// Queue state is created for the run and dropped afterwards, so
    /// serial operations before and after are untouched.
    pub fn run_queued(
        &mut self,
        table: &str,
        scripts: &[ClientScript],
        cfg: &QueueRunConfig,
    ) -> NkvResult<QueueRunReport> {
        if cfg.depth == 0 {
            return Err(NkvError::Config("queue run depth must be at least 1".into()));
        }
        if cfg.batch == 0 {
            return Err(NkvError::Config("queue run batch must be at least 1".into()));
        }
        // A batch larger than one key-list DMA page is legal: the fold
        // clamps each descriptor at the page capacity and the heap's
        // adjacency rule starts the next descriptor where the previous
        // one stopped, byte-identically (see `batch_fold_splits_...`).
        if !self.tables.contains_key(table) {
            return Err(NkvError::UnknownTable(table.into()));
        }
        self.platform.enable_queues(cfg.queues);
        self.set_pe_backfill(table, true);
        let out = self.run_queued_inner(table, scripts, cfg);
        self.set_pe_backfill(table, false);
        self.platform.disable_queues();
        out
    }

    /// Match the table's PE pool to the platform's scheduling mode for
    /// the duration of a queued run (see
    /// `cosmos_sim::Server::set_backfill`).
    fn set_pe_backfill(&mut self, table: &str, on: bool) {
        let t = self.tables.get_mut(table).expect("validated by run_queued");
        for pe in &mut t.exec.pe_servers {
            pe.set_backfill(on);
        }
    }

    fn run_queued_inner(
        &mut self,
        table: &str,
        scripts: &[ClientScript],
        cfg: &QueueRunConfig,
    ) -> NkvResult<QueueRunReport> {
        let started = self.clock;
        // Commands ready to submit: min-heap on (submit time, priority
        // rank, client, seq) — deterministic dispatch, earliest first;
        // at equal times the QoS class breaks the tie, then client and
        // seq keep the order total. All-Normal scripts reduce the key
        // to the legacy (time, client, seq) order.
        let mut ready: BinaryHeap<Reverse<(SimNs, u8, u32, u32)>> = BinaryHeap::new();
        let mut next_seq: Vec<usize> = Vec::with_capacity(scripts.len());
        let rank: Vec<u8> = scripts.iter().map(|s| s.priority.rank()).collect();
        for (c, s) in scripts.iter().enumerate() {
            let window = (cfg.depth as usize).min(s.ops.len());
            for i in 0..window {
                ready.push(Reverse((started, rank[c], c as u32, i as u32)));
            }
            next_seq.push(window);
        }
        let mut completions = Vec::new();
        let mut latency = LatencyHistogram::new();
        let mut cid: u16 = 0;
        while let Some(Reverse((at, prio, client, seq))) = ready.pop() {
            // Auto-batching: fold the client's *adjacent* ready GETs —
            // consecutive seqs, same submit time, distinct keys — into
            // one batched-GET physical op. With `batch == 1` this whole
            // branch is skipped and the run is the legacy path, bit for
            // bit. Adjacency in the heap preserves per-client order: a
            // non-GET, a duplicate key, or a later submit time ends the
            // fold rather than being skipped over.
            if cfg.batch > 1 {
                if let QueuedOp::Get { key } = scripts[client as usize].ops[seq as usize] {
                    let mut seqs = vec![seq];
                    let mut keys = vec![key];
                    // One descriptor never exceeds its DMA page; a
                    // larger `cfg.batch` splits into several folds.
                    let fold_cap =
                        (cfg.batch as usize).min(cosmos_sim::KeyListDescriptor::MAX_KEYS);
                    while keys.len() < fold_cap {
                        let Some(&last_seq) = seqs.last() else { break };
                        let expect = (at, prio, client, last_seq + 1);
                        match ready.peek() {
                            Some(Reverse(e)) if *e == expect => {}
                            _ => break,
                        }
                        let QueuedOp::Get { key: k } =
                            scripts[client as usize].ops[expect.3 as usize]
                        else {
                            break;
                        };
                        if keys.contains(&k) {
                            break;
                        }
                        ready.pop();
                        seqs.push(expect.3);
                        keys.push(k);
                    }
                    if keys.len() > 1 {
                        let n = keys.len();
                        let first_cid = cid;
                        let (qid, submit, fetch) =
                            self.platform.queue_submit_batch(client, first_cid, n as u16, at);
                        cid = cid.wrapping_add(n as u16);
                        let (results, dones, _) =
                            self.multi_get_at(table, &keys, cfg.mode, fetch)?;
                        let mut batch_complete = fetch;
                        for (i, (res, exec_done)) in results.into_iter().zip(dones).enumerate() {
                            // A typed per-key error aborts the run, like
                            // the unbatched path's `?` on execute_at.
                            let rec = res?;
                            let payload = rec.unwrap_or_default();
                            let complete = self.platform.queue_complete_batched(
                                qid,
                                first_cid.wrapping_add(i as u16),
                                exec_done,
                                i + 1 == n,
                            );
                            self.observe(OpKind::Get, complete - submit, payload.len() as u64);
                            latency.record(complete - submit);
                            completions.push(CommandRecord {
                                client,
                                seq: seqs[i],
                                qid,
                                kind: OpKind::Get,
                                submit_ns: submit,
                                fetch_ns: fetch,
                                exec_done_ns: exec_done,
                                complete_ns: complete,
                                exec_ns: exec_done - fetch,
                                result_bytes: payload.len() as u64,
                                payload,
                            });
                            batch_complete = complete;
                        }
                        // Refill the whole window the batch consumed, at
                        // the batch's last completion — the host drains
                        // the CQ burst at the coalesced doorbell, so the
                        // refills share one submit time and can fold
                        // again next round.
                        let c = client as usize;
                        for _ in 0..n {
                            if next_seq[c] < scripts[c].ops.len() {
                                ready.push(Reverse((
                                    batch_complete,
                                    prio,
                                    client,
                                    next_seq[c] as u32,
                                )));
                                next_seq[c] += 1;
                            }
                        }
                        continue;
                    }
                }
            }
            let op = &scripts[client as usize].ops[seq as usize];
            let (qid, submit, fetch) = self.platform.queue_submit(client, cid, at);
            cid = cid.wrapping_add(1);
            let (kind, exec_done, payload) = self.execute_at(table, op, cfg.mode, fetch)?;
            let result_bytes = match op {
                QueuedOp::Put { record } => record.len() as u64,
                _ => payload.len() as u64,
            };
            let complete = self.platform.queue_complete(qid, cid.wrapping_sub(1), exec_done);
            self.observe(kind, complete - submit, result_bytes);
            latency.record(complete - submit);
            completions.push(CommandRecord {
                client,
                seq,
                qid,
                kind,
                submit_ns: submit,
                fetch_ns: fetch,
                exec_done_ns: exec_done,
                complete_ns: complete,
                exec_ns: exec_done - fetch,
                result_bytes,
                payload,
            });
            let c = client as usize;
            if next_seq[c] < scripts[c].ops.len() {
                ready.push(Reverse((complete, prio, client, next_seq[c] as u32)));
                next_seq[c] += 1;
            }
        }
        completions.sort_by_key(|r| (r.complete_ns, r.client, r.seq));
        let finished = completions.last().map_or(started, |r| r.complete_ns);
        self.clock = self.clock.max(finished);
        let queue = self.platform.queues().expect("enabled by run_queued").stats_total();
        Ok(QueueRunReport {
            completions,
            started_ns: started,
            finished_ns: finished,
            latency,
            queue,
        })
    }

    /// Execute one command on the device starting at `now`, returning
    /// `(op kind, device-side end time, result payload)`.
    fn execute_at(
        &mut self,
        table: &str,
        op: &QueuedOp,
        mode: ExecMode,
        now: SimNs,
    ) -> NkvResult<(OpKind, SimNs, Vec<u8>)> {
        match op {
            QueuedOp::Get { key } => {
                let (rec, report) = self.get_at(table, *key, mode, now)?;
                Ok((OpKind::Get, now + report.sim_ns, rec.unwrap_or_default()))
            }
            QueuedOp::Scan { rules } => {
                // Lowered through the planner, so validation errors are
                // identical to the serial `NkvDb::scan` path.
                let summary = self.scan_at(table, rules, mode, now)?;
                Ok((OpKind::Scan, now + summary.report.sim_ns, summary.records))
            }
            QueuedOp::Put { record } => {
                let t = self.tables.get_mut(table).expect("validated by run_queued");
                let expected = t.lsm.record_bytes();
                if record.len() != expected {
                    return Err(NkvError::RecordSizeMismatch {
                        table: table.to_string(),
                        expected,
                        got: record.len(),
                    });
                }
                // Table creation rejects records narrower than the key,
                // but a slice panic here would abort the whole queued
                // run — decode defensively and surface a typed error.
                let key = record
                    .get(..8)
                    .and_then(|s| <[u8; 8]>::try_from(s).ok())
                    .map(u64::from_le_bytes)
                    .ok_or_else(|| {
                        NkvError::Config(format!(
                            "table `{table}`: {expected}-byte record cannot hold the 8-byte key"
                        ))
                    })?;
                t.lsm.put(key, record.clone());
                // Like the serial path: the memtable insert is free in
                // simulated time, a PUT costs whatever flush/compaction
                // it triggers.
                let done = self.maintain_at(table, now)?;
                Ok((OpKind::Put, done, Vec::new()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_zero_is_rejected() {
        let mut db = NkvDb::default_db();
        let cfg = QueueRunConfig { depth: 0, ..QueueRunConfig::default() };
        assert!(db.run_queued("t", &[], &cfg).is_err());
    }

    #[test]
    fn batch_bounds_are_validated() {
        let mut db = NkvDb::default_db();
        db.create_table("t", crate::db::TableConfig::new(test_pe())).unwrap();
        let zero = QueueRunConfig { batch: 0, ..QueueRunConfig::default() };
        assert!(matches!(db.run_queued("t", &[], &zero), Err(NkvError::Config(_))));
        let max = QueueRunConfig { batch: 510, ..QueueRunConfig::default() };
        assert!(max.batch as usize == cosmos_sim::KeyListDescriptor::MAX_KEYS);
        assert!(db.run_queued("t", &[], &max).is_ok());
        // Past the key-list descriptor's single-DMA-page capacity is
        // legal now: the fold splits into multiple descriptors.
        let over = QueueRunConfig { batch: 511, ..QueueRunConfig::default() };
        assert!(db.run_queued("t", &[], &over).is_ok());
    }

    #[test]
    fn unknown_table_is_rejected() {
        let mut db = NkvDb::default_db();
        let cfg = QueueRunConfig::default();
        assert!(matches!(
            db.run_queued("missing", &[], &cfg),
            Err(NkvError::UnknownTable(t)) if t == "missing"
        ));
    }

    #[test]
    fn empty_scripts_produce_empty_stable_report() {
        let mut db = NkvDb::default_db();
        db.create_table("t", crate::db::TableConfig::new(test_pe())).unwrap();
        let r = db.run_queued("t", &[], &QueueRunConfig::default()).unwrap();
        assert_eq!(r.ops(), 0);
        assert_eq!(r.started_ns, r.finished_ns);
        assert_eq!(r.latency.percentile_summary(), "n=0");
        assert_eq!(r.throughput_ops_per_sec(), 0.0);
        assert!(db.platform_mut().queues().is_none(), "queue state is per-run");
    }

    fn test_pe() -> ndp_ir::PeConfig {
        let m = ndp_spec::parse(ndp_workload::spec::PAPER_REF_SPEC).unwrap();
        ndp_ir::elaborate(&m, ndp_workload::spec::PAPER_PE).unwrap()
    }
}
