//! Fleet-level fault domains: one nKV namespace sharded across N
//! simulated Cosmos+ devices.
//!
//! The paper evaluates a *single* smart-storage device; real deployments
//! put many of them behind one host, and the host must treat each device
//! as an independent fault domain — a hung controller, a pulled power
//! rail or a flapping NVMe link takes out one shard, not the namespace.
//! This module is that host-side layer:
//!
//! * [`NkvCluster`] — a router over N independent [`NkvDb`] instances
//!   (each its own `CosmosPlatform`). Keys are placed by a
//!   [`ShardStrategy`] (stateless hash or explicit range boundaries);
//!   GET routes to one shard, SCAN / RANGE_SCAN / aggregate fan out
//!   device-parallel and merge in shard-index order. With one device the
//!   router is a pass-through: every result is byte-identical to calling
//!   the [`NkvDb`] directly.
//! * **Health FSM** — each shard runs `Healthy → Degraded → Quarantined
//!   → Dead` (with `Recovered` on the way back), driven by the typed
//!   [`NkvError`]s and device-level fault admissions the shard returns.
//!   A quarantined shard is probed every few cluster ops and either
//!   recovers or (after repeated failed probes) is declared dead; a dead
//!   shard only comes back through an explicit [`NkvCluster::heal_shard`].
//! * **Read policy** — [`ReadPolicy::Strict`] turns any unavailable
//!   shard into a typed [`NkvError::ShardUnavailable`];
//!   [`ReadPolicy::Available`] returns the surviving shards' results and
//!   lists the holes in `missing_shards`, so callers can tell a true
//!   miss from a degraded read.
//! * **Router retry** — shard calls are wrapped in the same bounded
//!   retry/backoff policy the device firmware uses
//!   ([`ResilienceConfig`]), with the backoff nanoseconds charged to the
//!   operation's reported time.
//!
//! Determinism: shards are a `Vec`, fan-out visits them in index order,
//! merges concatenate in that order, and an operation's cluster time is
//! the *maximum* participant time (the fan-out is device-parallel).
//! Nothing here consults a clock or RNG of its own, so a seeded chaos
//! campaign replays exactly.

use crate::db::{NkvDb, TableConfig};
use crate::error::{NkvError, NkvResult};
use crate::exec::ResilienceConfig;
use crate::metrics::{fmt_ns, DeviceStats, LatencyHistogram, MetricsRegistry, OpKind};
use crate::plan::{Backend, LogicalOp, PlanOutcome};
use crate::queue::{ClientScript, QueueRunConfig, QueuedOp};
use cosmos_sim::{
    ns_to_secs, CacheStats, CosmosConfig, CosmosPlatform, DeviceAdmission, DeviceFaultKind,
    DeviceFaultPlan, DeviceFaultStats, DeviceTrace, RouterSpan, RouterSpanKind, SimNs,
};
use ndp_pe::oracle::FilterRule;
use std::fmt;

/// Simulated cost of one router dispatch/merge step (the host-side hop
/// a fan-out pays before and after the devices run). Purely a trace
/// annotation: it is *never* added to any operation's reported time, so
/// enabling cluster observability stays timing-invisible.
const ROUTER_DISPATCH_NS: SimNs = 1_000;

/// How keys are placed onto shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Stateless hash placement: a 64-bit finalizer mix of the key,
    /// modulo the device count. Uniform, no metadata, no locality.
    Hash,
    /// Explicit range placement: `boundaries[i]` is the first key of
    /// shard `i + 1` (so `boundaries.len()` must be `devices - 1`, in
    /// strictly ascending order). Keeps key ranges contiguous per
    /// device, which lets RANGE_SCAN prune shards that provably hold no
    /// matching keys.
    Range { boundaries: Vec<u64> },
}

/// What a read does when a shard it needs is unavailable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadPolicy {
    /// Fail the whole operation with [`NkvError::ShardUnavailable`].
    Strict,
    /// Return the surviving shards' results and list the unavailable
    /// shards in `missing_shards`.
    #[default]
    Available,
}

/// Tuning of the per-shard health state machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthFsmConfig {
    /// Sliding error window length in ops (1..=64; the window is one
    /// `u64` of outcome bits).
    pub window: u32,
    /// Error rate over the window at which a `Degraded` shard is
    /// quarantined.
    pub quarantine_error_rate: f64,
    /// Minimum window samples before the quarantine rate is evaluated
    /// (so a single early error cannot quarantine a shard).
    pub quarantine_min_samples: u32,
    /// A quarantined shard is probed once every this many cluster ops.
    pub probe_interval_ops: u64,
    /// Consecutive failed probes after which a quarantined shard is
    /// declared `Dead`.
    pub dead_after_probes: u32,
    /// Consecutive successes that promote `Recovered` (or `Degraded`)
    /// back to `Healthy`.
    pub recovered_ok_ops: u32,
}

impl Default for HealthFsmConfig {
    fn default() -> Self {
        Self {
            window: 16,
            quarantine_error_rate: 0.5,
            quarantine_min_samples: 4,
            probe_interval_ops: 8,
            dead_after_probes: 3,
            recovered_ok_ops: 4,
        }
    }
}

/// Health state of one shard, as seen by the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardState {
    /// Serving normally.
    Healthy,
    /// Recent errors, still serving (every op is a chance to recover).
    Degraded,
    /// Error rate crossed the threshold: no traffic, periodic probes.
    Quarantined,
    /// Probes kept failing. Only [`NkvCluster::heal_shard`] revives it.
    Dead,
    /// Came back (successful probe or explicit heal); serving, one error
    /// away from `Degraded`, promoted to `Healthy` after a run of
    /// successes.
    Recovered,
}

impl ShardState {
    /// Order on the failure ladder: `Healthy(0) < Recovered(1) <
    /// Degraded(2) < Quarantined(3) < Dead(4)`. Under *sustained* faults
    /// (no successful op or probe, no heal) a shard's severity never
    /// decreases — the chaos suite asserts this monotonicity.
    pub fn severity(self) -> u8 {
        match self {
            ShardState::Healthy => 0,
            ShardState::Recovered => 1,
            ShardState::Degraded => 2,
            ShardState::Quarantined => 3,
            ShardState::Dead => 4,
        }
    }

    /// Does the router send this shard traffic?
    pub fn serving(self) -> bool {
        matches!(self, ShardState::Healthy | ShardState::Degraded | ShardState::Recovered)
    }
}

impl fmt::Display for ShardState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ShardState::Healthy => "healthy",
            ShardState::Degraded => "degraded",
            ShardState::Quarantined => "quarantined",
            ShardState::Dead => "dead",
            ShardState::Recovered => "recovered",
        };
        f.write_str(s)
    }
}

/// The per-shard health state machine (see [`HealthFsmConfig`]).
#[derive(Debug, Clone)]
struct HealthFsm {
    cfg: HealthFsmConfig,
    state: ShardState,
    /// Outcome bits of the last `window_len` routed ops (bit 0 =
    /// newest; 1 = error).
    window_bits: u64,
    window_len: u32,
    consecutive_ok: u32,
    ops_total: u64,
    errors_total: u64,
    ops_since_probe: u64,
    probes_sent: u64,
    /// Consecutive failed probes in the current quarantine.
    probe_failures: u32,
    transitions: u64,
}

impl HealthFsm {
    fn new(cfg: HealthFsmConfig) -> Self {
        Self {
            cfg,
            state: ShardState::Healthy,
            window_bits: 0,
            window_len: 0,
            consecutive_ok: 0,
            ops_total: 0,
            errors_total: 0,
            ops_since_probe: 0,
            probes_sent: 0,
            probe_failures: 0,
            transitions: 0,
        }
    }

    fn set_state(&mut self, next: ShardState) {
        if self.state != next {
            self.state = next;
            self.transitions += 1;
        }
    }

    fn record(&mut self, err: bool) {
        self.window_bits = (self.window_bits << 1) | err as u64;
        if self.cfg.window < 64 {
            self.window_bits &= (1u64 << self.cfg.window) - 1;
        }
        if self.window_len < self.cfg.window {
            self.window_len += 1;
        }
        self.ops_total += 1;
        if err {
            self.errors_total += 1;
            self.consecutive_ok = 0;
        } else {
            self.consecutive_ok += 1;
        }
    }

    fn window_error_rate(&self) -> f64 {
        if self.window_len == 0 {
            return 0.0;
        }
        self.window_bits.count_ones() as f64 / self.window_len as f64
    }

    fn on_success(&mut self) {
        self.record(false);
        if matches!(self.state, ShardState::Degraded | ShardState::Recovered)
            && self.consecutive_ok >= self.cfg.recovered_ok_ops
        {
            self.set_state(ShardState::Healthy);
        }
    }

    fn on_error(&mut self) {
        self.record(true);
        match self.state {
            ShardState::Healthy | ShardState::Recovered => self.set_state(ShardState::Degraded),
            ShardState::Degraded => {
                if self.window_len >= self.cfg.quarantine_min_samples
                    && self.window_error_rate() >= self.cfg.quarantine_error_rate
                {
                    self.ops_since_probe = 0;
                    self.probe_failures = 0;
                    self.set_state(ShardState::Quarantined);
                }
            }
            // Quarantined/Dead shards get no traffic, so no op errors.
            ShardState::Quarantined | ShardState::Dead => {}
        }
    }

    /// Tick the probe counter (one cluster op elapsed); returns whether
    /// a probe is due now. Only meaningful in `Quarantined`.
    fn probe_due(&mut self) -> bool {
        self.ops_since_probe += 1;
        if self.ops_since_probe >= self.cfg.probe_interval_ops {
            self.ops_since_probe = 0;
            true
        } else {
            false
        }
    }

    fn on_probe(&mut self, ok: bool) {
        self.probes_sent += 1;
        if ok {
            self.reset_window();
            self.set_state(ShardState::Recovered);
        } else {
            self.probe_failures += 1;
            if self.probe_failures >= self.cfg.dead_after_probes {
                self.set_state(ShardState::Dead);
            }
        }
    }

    fn heal(&mut self) {
        self.reset_window();
        self.set_state(ShardState::Recovered);
    }

    fn reset_window(&mut self) {
        self.window_bits = 0;
        self.window_len = 0;
        self.consecutive_ok = 0;
        self.probe_failures = 0;
        self.ops_since_probe = 0;
    }
}

/// One shard: an independent simulated device plus its health FSM.
struct Shard {
    db: NkvDb,
    fsm: HealthFsm,
}

/// Cluster construction parameters.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of simulated devices (>= 1).
    pub devices: usize,
    /// Key placement.
    pub strategy: ShardStrategy,
    /// Behaviour of reads that need an unavailable shard.
    pub read_policy: ReadPolicy,
    /// Health FSM tuning.
    pub health: HealthFsmConfig,
    /// Router-side retry/backoff policy for shard calls (same shape the
    /// device firmware uses for flash reads).
    pub router: ResilienceConfig,
    /// Platform every shard device is built from.
    pub platform: CosmosConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            devices: 4,
            strategy: ShardStrategy::Hash,
            read_policy: ReadPolicy::Available,
            health: HealthFsmConfig::default(),
            router: ResilienceConfig::default(),
            platform: CosmosConfig::default(),
        }
    }
}

/// A cluster point lookup's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterGet {
    /// The record, if its shard served and had it.
    pub record: Option<Vec<u8>>,
    /// Shards that could not serve (empty under [`ReadPolicy::Strict`],
    /// which errors instead).
    pub missing_shards: Vec<usize>,
    /// Simulated device time, including router backoff.
    pub sim_ns: SimNs,
}

/// A cluster batched GET's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterMultiGet {
    /// Per-key outcomes, in input-key order. A key on a missing shard
    /// (under [`ReadPolicy::Available`]) reads as `Ok(None)`, exactly
    /// like the single-key path; per-key logic errors from a serving
    /// shard keep their typed [`NkvError`].
    pub results: Vec<NkvResult<Option<Vec<u8>>>>,
    /// Shards that could not serve their slice of the batch.
    pub missing_shards: Vec<usize>,
    /// Max participant device time (shard batches run device-parallel).
    pub sim_ns: SimNs,
}

/// A cluster scan's outcome: surviving shards' records concatenated in
/// shard-index order (each shard's records are in its own key order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterScan {
    /// Matched output tuples, back to back.
    pub records: Vec<u8>,
    /// Matched tuple count.
    pub count: u64,
    /// Shards that could not serve.
    pub missing_shards: Vec<usize>,
    /// Max participant device time (the fan-out is device-parallel).
    pub sim_ns: SimNs,
}

/// A cluster aggregate's outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterAggregate {
    /// Merged accumulator (COUNT/SUM add, MIN/MAX compare). Meaningless
    /// when `any` is false.
    pub value: u64,
    /// Whether any surviving shard matched at least one record.
    pub any: bool,
    /// Shards that could not serve.
    pub missing_shards: Vec<usize>,
    /// Max participant device time.
    pub sim_ns: SimNs,
}

/// Outcome of a cluster-wide queued run ([`NkvCluster::run_queued`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRunReport {
    /// Ops in the submitted scripts (a SCAN counts once, even though it
    /// fans out to every shard).
    pub logical_ops: u64,
    /// Device-side command completions summed over shards (>=
    /// `logical_ops` once scans fan out).
    pub completions: u64,
    /// Cluster wall time: the maximum shard span (shards run
    /// device-parallel).
    pub span_ns: SimNs,
    /// Submit→complete latency merged across shards.
    pub latency: LatencyHistogram,
    /// Each shard's own span, by shard index.
    pub shard_spans: Vec<SimNs>,
}

impl ClusterRunReport {
    /// Logical operations per second of cluster wall time.
    pub fn throughput_ops_per_sec(&self) -> f64 {
        if self.span_ns == 0 {
            0.0
        } else {
            self.logical_ops as f64 / ns_to_secs(self.span_ns)
        }
    }
}

/// One shard's health, as reported by [`NkvCluster::cluster_health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index.
    pub shard: usize,
    /// FSM state.
    pub state: ShardState,
    /// Routed ops (successes + errors) the FSM has scored.
    pub ops: u64,
    /// Errors the FSM has scored.
    pub errors: u64,
    /// Probes sent while quarantined.
    pub probes_sent: u64,
    /// State transitions taken.
    pub transitions: u64,
}

/// Cluster-wide health snapshot with a stable `Display` rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterHealthReport {
    /// Per-shard health, by shard index.
    pub shards: Vec<ShardHealth>,
    /// Router-level retries across all shards.
    pub router_retries: u64,
    /// Backoff nanoseconds the router charged to operations.
    pub router_backoff_ns: u64,
}

impl fmt::Display for ClusterHealthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let count = |s: ShardState| self.shards.iter().filter(|h| h.state == s).count();
        writeln!(
            f,
            "cluster: {} shards ({} serving) — {} healthy, {} degraded, {} quarantined, {} dead, {} recovered",
            self.shards.len(),
            self.shards.iter().filter(|h| h.state.serving()).count(),
            count(ShardState::Healthy),
            count(ShardState::Degraded),
            count(ShardState::Quarantined),
            count(ShardState::Dead),
            count(ShardState::Recovered),
        )?;
        for h in &self.shards {
            writeln!(
                f,
                "  shard {}: {} (ops {}, errors {}, probes {}, transitions {})",
                h.shard, h.state, h.ops, h.errors, h.probes_sent, h.transitions
            )?;
        }
        write!(
            f,
            "  router: {} retries (+{} ns backoff)",
            self.router_retries, self.router_backoff_ns
        )
    }
}

/// One shard's full observability snapshot inside a [`ClusterStats`].
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStatsRow {
    /// Shard index.
    pub shard: usize,
    /// FSM state at snapshot time.
    pub state: ShardState,
    /// The shard device's own [`DeviceStats`] (metrics + health + cache
    /// + dropped trace spans).
    pub stats: DeviceStats,
}

/// Fleet-wide metrics snapshot ([`NkvCluster::cluster_stats`]): every
/// shard's [`DeviceStats`] plus the cross-shard fold.
///
/// The merged registry is exact — log-bucket histograms merge
/// bucket-wise ([`LatencyHistogram::merge`]) and breakdowns add — so
/// fleet quantiles equal the quantiles of every shard's samples
/// concatenated (the property test pins this). `busy_skew` is the
/// max/median ratio of per-shard total busy time: ~1.0 means placement
/// spread load evenly, >>1 flags a hot shard for the future rebalancer.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterStats {
    /// Per-shard rows, by shard index.
    pub shards: Vec<ShardStatsRow>,
    /// Cross-shard fold of every shard's metrics registry.
    pub merged: MetricsRegistry,
    /// Summed block-cache counters (`None` when no shard has a cache).
    pub merged_cache: Option<CacheStats>,
    /// Trace spans lost to ring overflow, summed over shards.
    pub dropped_spans: u64,
    /// Router-level retries across all shards.
    pub router_retries: u64,
    /// Backoff nanoseconds the router charged to operations.
    pub router_backoff_ns: u64,
    /// Max/median per-shard busy time (0.0 when the median is zero —
    /// an idle or untraced fleet has no meaningful skew).
    pub busy_skew: f64,
}

impl ClusterStats {
    /// Total operations recorded across the fleet.
    pub fn total_ops(&self) -> u64 {
        self.merged.total_ops()
    }

    /// Fleet-wide cache hit rate in `[0, 1]` (0.0 with no cache or no
    /// lookups).
    pub fn cache_hit_rate(&self) -> f64 {
        self.merged_cache.as_ref().map_or(0.0, |c| c.hit_rate())
    }
}

impl fmt::Display for ClusterStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster stats: {} shards, {} ops, busy skew {:.2}x",
            self.shards.len(),
            self.total_ops(),
            self.busy_skew,
        )?;
        for row in &self.shards {
            let b = row.stats.metrics.total_breakdown();
            write!(
                f,
                "  shard {} [{}]: ops={} busy={} (flash={} dram={} pe={} cfg={} nvme={})",
                row.shard,
                row.state,
                row.stats.metrics.total_ops(),
                fmt_ns(b.total()),
                fmt_ns(b.flash_ns),
                fmt_ns(b.dram_ns),
                fmt_ns(b.pe_ns),
                fmt_ns(b.cfg_ns),
                fmt_ns(b.nvme_ns),
            )?;
            if let Some(c) = &row.stats.cache {
                write!(f, " cache_hits={} ({:.1}%)", c.hits, c.hit_rate() * 100.0)?;
            }
            if row.stats.dropped_spans > 0 {
                write!(f, " dropped_spans={}", row.stats.dropped_spans)?;
            }
            writeln!(f)?;
        }
        for kind in OpKind::ALL {
            let m = self.merged.op(kind);
            if m.ops == 0 {
                continue;
            }
            writeln!(
                f,
                "  merged {:<11} ops={} bytes={} {}",
                kind.name(),
                m.ops,
                m.bytes,
                m.hist.percentile_summary(),
            )?;
        }
        if let Some(c) = &self.merged_cache {
            writeln!(
                f,
                "  merged cache: lookups={} hits={} ({:.1}%) misses={}",
                c.lookups,
                c.hits,
                c.hit_rate() * 100.0,
                c.misses,
            )?;
        }
        if self.dropped_spans > 0 {
            writeln!(f, "  merged trace: dropped_spans={} (ring overflowed)", self.dropped_spans)?;
        }
        write!(
            f,
            "  router: {} retries (+{} ns backoff)",
            self.router_retries, self.router_backoff_ns
        )
    }
}

/// Why a shard call failed, split into the two classes the router
/// treats differently.
enum ShardCallError {
    /// Device/shard infrastructure failure — scored by the health FSM,
    /// absorbed or surfaced per [`ReadPolicy`].
    Fault(String),
    /// Caller mistake (unknown table, bad lane, size mismatch, ...) —
    /// propagated verbatim, never scored against the shard.
    Logic(NkvError),
}

/// Is this error the shard's fault (infrastructure) rather than the
/// caller's (logic)?
fn is_shard_fault(e: &NkvError) -> bool {
    matches!(
        e,
        NkvError::Flash(_)
            | NkvError::CorruptBlock { .. }
            | NkvError::RetriesExhausted { .. }
            | NkvError::PeTimeout { .. }
            | NkvError::ResultDecode { .. }
            | NkvError::ShardUnavailable { .. }
    )
}

fn admission_reason(kind: DeviceFaultKind) -> &'static str {
    match kind {
        DeviceFaultKind::Hang => "device hang",
        DeviceFaultKind::PowerCut => "device power cut",
        DeviceFaultKind::LinkLoss => "nvme link loss",
        DeviceFaultKind::Slow { .. } => "gray slowdown",
    }
}

/// 64-bit finalizer mix (murmur3-style): avalanche the key so
/// consecutive keys spread across shards.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

/// Run one shard call under the router's bounded retry/backoff policy.
///
/// Every attempt first passes the device's admission gate (the
/// cluster-level fault hook): a rejected admission counts as a failed
/// attempt, a gray-slow admission stretches the op's reported time by
/// `factor_x10 / 10`. Backoff nanoseconds accumulate into the returned
/// time, mirroring what a host-side retry loop would cost in wall time.
fn shard_call<T>(
    shard: &mut Shard,
    router: &ResilienceConfig,
    retries: &mut u64,
    backoff_total: &mut u64,
    mut op: impl FnMut(&mut NkvDb) -> NkvResult<(T, SimNs)>,
) -> Result<(T, SimNs), ShardCallError> {
    let mut penalty: SimNs = 0;
    let mut attempt: u32 = 0;
    loop {
        attempt += 1;
        let outcome = match shard.db.platform_mut().device_op_admit() {
            DeviceAdmission::Rejected(kind) => Err(admission_reason(kind).to_string()),
            DeviceAdmission::Slow { factor_x10 } => match op(&mut shard.db) {
                Ok((v, ns)) => Ok((v, ns.saturating_mul(factor_x10 as u64) / 10)),
                Err(e) if is_shard_fault(&e) => Err(e.to_string()),
                Err(e) => return Err(ShardCallError::Logic(e)),
            },
            DeviceAdmission::Ok => match op(&mut shard.db) {
                Ok(out) => Ok(out),
                Err(e) if is_shard_fault(&e) => Err(e.to_string()),
                Err(e) => return Err(ShardCallError::Logic(e)),
            },
        };
        match outcome {
            Ok((v, ns)) => return Ok((v, ns.saturating_add(penalty))),
            Err(reason) => {
                if attempt > router.max_read_retries {
                    return Err(ShardCallError::Fault(reason));
                }
                let backoff = crate::engine::backoff_before_retry(router, attempt);
                penalty = penalty.saturating_add(backoff);
                *retries += 1;
                *backoff_total += backoff;
            }
        }
    }
}

/// A host-side router over N independent simulated Cosmos+ devices.
///
/// See the [module docs](self) for semantics. All mutating entry points
/// first give quarantined shards their probe tick, so recovery needs no
/// background thread — it rides on foreground traffic, deterministic in
/// op counts.
pub struct NkvCluster {
    cfg: ClusterConfig,
    shards: Vec<Shard>,
    /// Tables created so far — the recovery recipe a healed device
    /// rebuilds from after a power cut.
    table_configs: Vec<(String, TableConfig)>,
    router_retries: u64,
    router_backoff_ns: u64,
    /// Whether router spans are recorded (set by
    /// [`NkvCluster::enable_observability`]).
    trace_router: bool,
    /// The router's own virtual timeline: fan-outs of successive ops
    /// are laid out back to back so the merged flame graph reads as a
    /// sequence, independent of any shard's device clock.
    router_clock: SimNs,
    /// Synthetic fan-out / per-shard-wait / merge spans recorded so far.
    router_spans: Vec<RouterSpan>,
}

impl NkvCluster {
    /// Build a cluster of `cfg.devices` fresh devices.
    pub fn new(cfg: ClusterConfig) -> NkvResult<Self> {
        if cfg.devices == 0 {
            return Err(NkvError::Config("cluster needs at least 1 device".into()));
        }
        if cfg.health.window == 0 || cfg.health.window > 64 {
            return Err(NkvError::Config(format!(
                "health window must be 1..=64 ops, got {}",
                cfg.health.window
            )));
        }
        if !(cfg.health.quarantine_error_rate > 0.0 && cfg.health.quarantine_error_rate <= 1.0) {
            return Err(NkvError::Config(format!(
                "quarantine error rate must be in (0, 1], got {}",
                cfg.health.quarantine_error_rate
            )));
        }
        if cfg.health.probe_interval_ops == 0
            || cfg.health.dead_after_probes == 0
            || cfg.health.recovered_ok_ops == 0
        {
            return Err(NkvError::Config(
                "probe interval, dead-after-probes and recovered-ok ops must all be >= 1".into(),
            ));
        }
        if let ShardStrategy::Range { boundaries } = &cfg.strategy {
            if boundaries.len() != cfg.devices - 1 {
                return Err(NkvError::Config(format!(
                    "range sharding over {} devices needs {} boundaries, got {}",
                    cfg.devices,
                    cfg.devices - 1,
                    boundaries.len()
                )));
            }
            if boundaries.windows(2).any(|w| w[0] >= w[1]) {
                return Err(NkvError::Config("range boundaries must be strictly ascending".into()));
            }
        }
        let shards = (0..cfg.devices)
            .map(|_| Shard {
                db: NkvDb::new(cfg.platform.clone()),
                fsm: HealthFsm::new(cfg.health),
            })
            .collect();
        Ok(Self {
            cfg,
            shards,
            table_configs: Vec::new(),
            router_retries: 0,
            router_backoff_ns: 0,
            trace_router: false,
            router_clock: 0,
            router_spans: Vec::new(),
        })
    }

    /// Turn on the full fleet observability stack: op metrics plus
    /// event tracing on every shard device (each ring holds up to
    /// `trace_capacity` spans), and synthetic router spans on the
    /// router's own virtual timeline. Timing-invisible like the
    /// single-device stack: every reported `sim_ns` is byte-identical
    /// to an unobserved cluster.
    pub fn enable_observability(&mut self, trace_capacity: usize) {
        for shard in &mut self.shards {
            shard.db.enable_observability(trace_capacity);
        }
        self.trace_router = true;
    }

    /// Number of devices.
    pub fn devices(&self) -> usize {
        self.shards.len()
    }

    /// The cluster's read policy.
    pub fn read_policy(&self) -> ReadPolicy {
        self.cfg.read_policy
    }

    /// Which shard owns `key` under the cluster's placement strategy.
    pub fn shard_for_key(&self, key: u64) -> usize {
        match &self.cfg.strategy {
            ShardStrategy::Hash => (mix64(key) % self.shards.len() as u64) as usize,
            ShardStrategy::Range { boundaries } => boundaries.partition_point(|&b| b <= key),
        }
    }

    /// Direct access to one shard's device — the chaos-test and
    /// operations escape hatch (inject faults, inspect flash, compare
    /// against a standalone device).
    pub fn shard_db(&mut self, shard: usize) -> NkvResult<&mut NkvDb> {
        let n = self.shards.len();
        self.shards.get_mut(shard).map(|s| &mut s.db).ok_or_else(|| {
            NkvError::Config(format!("shard {shard} out of range (cluster has {n})"))
        })
    }

    /// One shard's FSM state.
    pub fn shard_state(&self, shard: usize) -> NkvResult<ShardState> {
        let n = self.shards.len();
        self.shards.get(shard).map(|s| s.fsm.state).ok_or_else(|| {
            NkvError::Config(format!("shard {shard} out of range (cluster has {n})"))
        })
    }

    /// Install a device-level fault plan on one shard (see
    /// [`DeviceFaultPlan`]). The fault trips after its op budget and
    /// from then on rejects (or slows) every admission until healed.
    pub fn install_device_fault(&mut self, shard: usize, plan: DeviceFaultPlan) -> NkvResult<()> {
        self.shard_db(shard)?.platform_mut().install_device_fault(plan);
        Ok(())
    }

    /// The shard device's fault counters, if a plan is installed.
    pub fn device_fault_stats(&mut self, shard: usize) -> NkvResult<Option<DeviceFaultStats>> {
        Ok(self.shard_db(shard)?.platform_mut().device_fault_stats())
    }

    /// Repair one shard, clearing its device fault and resetting its FSM
    /// to `Recovered` (the operator swapped the cable / power-cycled the
    /// enclosure).
    ///
    /// A power-cut fault destroys the device's volatile state, so the
    /// heal path rebuilds the shard the same way the single-device
    /// recovery test does: carry the flash image over, clear the cut,
    /// and run manifest recovery against the tables created so far.
    /// Unflushed memtable contents are lost — exactly the volatility
    /// contract [`NkvDb::persist`] documents.
    pub fn heal_shard(&mut self, shard: usize) -> NkvResult<()> {
        let fault = self.shard_db(shard)?.platform_mut().device_fault_active();
        match fault {
            Some(DeviceFaultKind::PowerCut) => {
                let mut fresh = CosmosPlatform::new(self.cfg.platform.clone());
                fresh.flash = self.shards[shard].db.platform_mut().flash.clone();
                fresh.flash.reboot();
                let db = NkvDb::recover(fresh, self.table_configs.clone())?;
                self.shards[shard].db = db;
            }
            _ => self.shards[shard].db.platform_mut().clear_device_fault(),
        }
        self.shards[shard].fsm.heal();
        Ok(())
    }

    /// Cluster-wide health snapshot.
    pub fn cluster_health(&self) -> ClusterHealthReport {
        ClusterHealthReport {
            shards: self
                .shards
                .iter()
                .enumerate()
                .map(|(i, s)| ShardHealth {
                    shard: i,
                    state: s.fsm.state,
                    ops: s.fsm.ops_total,
                    errors: s.fsm.errors_total,
                    probes_sent: s.fsm.probes_sent,
                    transitions: s.fsm.transitions,
                })
                .collect(),
            router_retries: self.router_retries,
            router_backoff_ns: self.router_backoff_ns,
        }
    }

    /// Fleet-wide metrics snapshot: every shard's [`DeviceStats`] plus
    /// the exact cross-shard fold (see [`ClusterStats`]).
    pub fn cluster_stats(&self) -> ClusterStats {
        let shards: Vec<ShardStatsRow> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardStatsRow {
                shard: i,
                state: s.fsm.state,
                stats: s.db.device_stats(),
            })
            .collect();
        let mut merged = MetricsRegistry::new();
        let mut merged_cache: Option<CacheStats> = None;
        let mut dropped_spans = 0;
        let mut busy: Vec<SimNs> = Vec::with_capacity(shards.len());
        for row in &shards {
            merged.merge(&row.stats.metrics);
            dropped_spans += row.stats.dropped_spans;
            busy.push(row.stats.metrics.total_breakdown().total());
            if let Some(c) = &row.stats.cache {
                let acc = merged_cache.get_or_insert_with(CacheStats::default);
                acc.lookups += c.lookups;
                acc.hits += c.hits;
                acc.misses += c.misses;
                acc.insertions += c.insertions;
                acc.evictions += c.evictions;
                acc.invalidations += c.invalidations;
                acc.hit_bytes += c.hit_bytes;
            }
        }
        let max = busy.iter().copied().max().unwrap_or(0);
        busy.sort_unstable();
        let median = busy[busy.len() / 2];
        let busy_skew = if median == 0 { 0.0 } else { max as f64 / median as f64 };
        ClusterStats {
            shards,
            merged,
            merged_cache,
            dropped_spans,
            router_retries: self.router_retries,
            router_backoff_ns: self.router_backoff_ns,
            busy_skew,
        }
    }

    /// Drain every shard's trace buffer plus the router's synthetic
    /// spans, ready for one merged Chrome export via
    /// [`cosmos_sim::chrome_trace_json_cluster`] (device `i`'s pids are
    /// offset by `DEVICE_PID_STRIDE * i` there; the router gets its own
    /// process). Empty while observability is off.
    pub fn take_cluster_trace(&mut self) -> (Vec<DeviceTrace>, Vec<RouterSpan>) {
        let devices = self
            .shards
            .iter_mut()
            .enumerate()
            .map(|(i, s)| {
                let events = s.db.take_trace();
                DeviceTrace {
                    device: i as u32,
                    events,
                    dropped_spans: s.db.platform_mut().trace_dropped(),
                }
            })
            .collect();
        (devices, std::mem::take(&mut self.router_spans))
    }

    /// Record one fan-out on the router's virtual timeline: a dispatch
    /// marker, one wait span per participating shard (that shard's
    /// device time), and a merge marker after the slowest wait. No-op
    /// while router tracing is off; never touches any reported time.
    fn record_router_fanout(&mut self, waits: &[(usize, SimNs)]) {
        if !self.trace_router || waits.is_empty() {
            return;
        }
        let shards = waits.len() as u32;
        let start = self.router_clock;
        self.router_spans.push(RouterSpan {
            kind: RouterSpanKind::FanOut { shards },
            start,
            dur: ROUTER_DISPATCH_NS,
        });
        let wait_start = start + ROUTER_DISPATCH_NS;
        let mut max_wait: SimNs = 0;
        for &(shard, ns) in waits {
            self.router_spans.push(RouterSpan {
                kind: RouterSpanKind::ShardWait { shard: shard as u32 },
                start: wait_start,
                dur: ns,
            });
            max_wait = max_wait.max(ns);
        }
        self.router_spans.push(RouterSpan {
            kind: RouterSpanKind::Merge { shards },
            start: wait_start + max_wait,
            dur: ROUTER_DISPATCH_NS,
        });
        self.router_clock = wait_start + max_wait + ROUTER_DISPATCH_NS;
    }

    /// Create `name` on every shard (a table spans the namespace).
    pub fn create_table(&mut self, name: &str, cfg: TableConfig) -> NkvResult<()> {
        for shard in &mut self.shards {
            shard.db.create_table(name, cfg.clone())?;
        }
        self.table_configs.push((name.to_string(), cfg));
        Ok(())
    }

    /// Route a PUT to the key's shard. Writes have no partial mode: an
    /// unavailable target shard is always a typed
    /// [`NkvError::ShardUnavailable`], under either read policy.
    pub fn put(&mut self, table: &str, record: Vec<u8>) -> NkvResult<()> {
        self.probe_quarantined();
        let shard = if record.len() >= 8 {
            self.shard_for_key(u64::from_le_bytes(record[..8].try_into().unwrap_or([0; 8])))
        } else {
            // Too short to carry a key; any shard will return the same
            // typed RecordSizeMismatch, so route deterministically.
            0
        };
        self.write_on(shard, |db| db.put(table, record.clone()).map(|()| ((), 0)))
    }

    /// Route a DELETE to the key's shard (same write semantics as
    /// [`NkvCluster::put`]).
    pub fn delete(&mut self, table: &str, key: u64) -> NkvResult<()> {
        self.probe_quarantined();
        let shard = self.shard_for_key(key);
        self.write_on(shard, |db| db.delete(table, key).map(|()| ((), 0)))
    }

    /// Flush every shard's memtable.
    pub fn flush(&mut self, table: &str) -> NkvResult<()> {
        self.probe_quarantined();
        for shard in 0..self.shards.len() {
            self.write_on(shard, |db| db.flush(table).map(|()| ((), 0)))?;
        }
        Ok(())
    }

    /// Persist every shard's manifest (see [`NkvDb::persist`]).
    pub fn persist(&mut self) -> NkvResult<()> {
        self.probe_quarantined();
        for shard in 0..self.shards.len() {
            self.write_on(shard, |db| db.persist().map(|()| ((), 0)))?;
        }
        Ok(())
    }

    /// Bulk load sorted records, partitioned by shard. The input must be
    /// in strictly ascending key order (the single-device contract);
    /// partitioning preserves that order per shard. Returns the total
    /// records loaded.
    pub fn bulk_load(&mut self, table: &str, records: Vec<Vec<u8>>) -> NkvResult<u64> {
        self.probe_quarantined();
        let mut parts: Vec<Vec<Vec<u8>>> = vec![Vec::new(); self.shards.len()];
        for rec in records {
            let shard = if rec.len() >= 8 {
                self.shard_for_key(u64::from_le_bytes(rec[..8].try_into().unwrap_or([0; 8])))
            } else {
                0
            };
            parts[shard].push(rec);
        }
        let mut total = 0;
        for (shard, part) in parts.into_iter().enumerate() {
            if part.is_empty() {
                continue;
            }
            total +=
                self.write_on(shard, |db| db.bulk_load(table, part.clone()).map(|n| (n, 0)))?;
        }
        Ok(total)
    }

    /// Set the parallel-PE stream count on every shard's table.
    pub fn set_parallel_pes(&mut self, table: &str, n: usize) -> NkvResult<()> {
        for shard in &mut self.shards {
            shard.db.set_parallel_pes(table, n)?;
        }
        Ok(())
    }

    /// Cluster point lookup: routes to the key's shard.
    pub fn get(&mut self, table: &str, key: u64, backend: Backend) -> NkvResult<ClusterGet> {
        self.probe_quarantined();
        let shard = self.shard_for_key(key);
        if !self.shards[shard].fsm.state.serving() {
            return match self.unavailable(shard) {
                Err(e) => Err(e),
                Ok(()) => Ok(ClusterGet { record: None, missing_shards: vec![shard], sim_ns: 0 }),
            };
        }
        let op = LogicalOp::Get { key };
        let router = self.cfg.router;
        let res = shard_call(
            &mut self.shards[shard],
            &router,
            &mut self.router_retries,
            &mut self.router_backoff_ns,
            |db| match db.execute(table, &op, backend)? {
                PlanOutcome::Point { record, report } => Ok((record, report.sim_ns)),
                _ => Err(NkvError::Config("GET lowered to a non-point plan".into())),
            },
        );
        match res {
            Ok((record, sim_ns)) => {
                self.shards[shard].fsm.on_success();
                self.record_router_fanout(&[(shard, sim_ns)]);
                Ok(ClusterGet { record, missing_shards: Vec::new(), sim_ns })
            }
            Err(ShardCallError::Logic(e)) => Err(e),
            Err(ShardCallError::Fault(reason)) => {
                self.shards[shard].fsm.on_error();
                match self.cfg.read_policy {
                    ReadPolicy::Strict => Err(NkvError::ShardUnavailable { shard, reason }),
                    ReadPolicy::Available => {
                        Ok(ClusterGet { record: None, missing_shards: vec![shard], sim_ns: 0 })
                    }
                }
            }
        }
    }

    /// Cluster batched GET: validates the whole key list against the
    /// key-list descriptor contract, splits it per shard (each slice
    /// keeps the input's relative order), runs one batched-GET physical
    /// op per shard in shard-index order, and scatters the per-key
    /// results back to input-key order — the same bytes an unbatched
    /// per-key fan-out would produce.
    pub fn multi_get(
        &mut self,
        table: &str,
        keys: &[u64],
        backend: Backend,
    ) -> NkvResult<ClusterMultiGet> {
        // Shape violations (empty, duplicate, over-capacity) are logic
        // errors on the full input list, before any shard is touched.
        cosmos_sim::KeyListDescriptor::new(keys)
            .map_err(|e| NkvError::Config(format!("cluster batched GET on `{table}`: {e}")))?;
        self.probe_quarantined();
        let router = self.cfg.router;
        let mut per_shard: Vec<Vec<(usize, u64)>> = vec![Vec::new(); self.shards.len()];
        for (i, &k) in keys.iter().enumerate() {
            per_shard[self.shard_for_key(k)].push((i, k));
        }
        let mut results: Vec<NkvResult<Option<Vec<u8>>>> = keys.iter().map(|_| Ok(None)).collect();
        let mut missing = Vec::new();
        let mut waits: Vec<(usize, SimNs)> = Vec::new();
        let mut sim_ns: SimNs = 0;
        for (shard, slots) in per_shard.iter().enumerate() {
            if slots.is_empty() {
                continue;
            }
            if !self.shards[shard].fsm.state.serving() {
                self.unavailable(shard)?;
                missing.push(shard);
                continue;
            }
            let shard_keys: Vec<u64> = slots.iter().map(|&(_, k)| k).collect();
            let op = LogicalOp::MultiGet { keys: shard_keys };
            let res = shard_call(
                &mut self.shards[shard],
                &router,
                &mut self.router_retries,
                &mut self.router_backoff_ns,
                |db| match db.execute(table, &op, backend)? {
                    PlanOutcome::Batch { results, report } => Ok((results, report.sim_ns)),
                    // A single-key slice folds to the legacy point plan.
                    PlanOutcome::Point { record, report } => Ok((vec![Ok(record)], report.sim_ns)),
                    _ => Err(NkvError::Config("batched GET lowered to a non-batch plan".into())),
                },
            );
            match res {
                Ok((shard_results, ns)) => {
                    self.shards[shard].fsm.on_success();
                    for (slot, r) in slots.iter().zip(shard_results) {
                        results[slot.0] = r;
                    }
                    waits.push((shard, ns));
                    sim_ns = sim_ns.max(ns);
                }
                Err(ShardCallError::Logic(e)) => return Err(e),
                Err(ShardCallError::Fault(reason)) => {
                    self.shards[shard].fsm.on_error();
                    if matches!(self.cfg.read_policy, ReadPolicy::Strict) {
                        return Err(NkvError::ShardUnavailable { shard, reason });
                    }
                    missing.push(shard);
                }
            }
        }
        self.record_router_fanout(&waits);
        Ok(ClusterMultiGet { results, missing_shards: missing, sim_ns })
    }

    /// Cluster SCAN: fan out to every shard, concatenate surviving
    /// results in shard-index order.
    pub fn scan(
        &mut self,
        table: &str,
        rules: &[FilterRule],
        backend: Backend,
    ) -> NkvResult<ClusterScan> {
        let op = LogicalOp::Scan { rules: rules.to_vec() };
        self.fanout_scan(table, &op, backend, None)
    }

    /// Cluster SCAN with cost-based tier selection: every serving shard
    /// prices the scan against its *own* shape (shard data volumes and
    /// cache heat diverge under skew) and runs whichever tier its model
    /// picks, so one fan-out can mix software and hardware shards.
    /// Returns the merged scan plus each shard's chosen tier, in shard
    /// order. Results are byte-identical to any forced-tier fan-out.
    pub fn scan_adaptive(
        &mut self,
        table: &str,
        rules: &[FilterRule],
    ) -> NkvResult<(ClusterScan, Vec<(usize, Backend)>)> {
        self.probe_quarantined();
        let op = LogicalOp::Scan { rules: rules.to_vec() };
        let router = self.cfg.router;
        let mut records = Vec::new();
        let mut count = 0;
        let mut missing = Vec::new();
        let mut tiers: Vec<(usize, Backend)> = Vec::new();
        let mut waits: Vec<(usize, SimNs)> = Vec::new();
        let mut sim_ns: SimNs = 0;
        for shard in self.participants(None) {
            if !self.shards[shard].fsm.state.serving() {
                self.unavailable(shard)?;
                missing.push(shard);
                continue;
            }
            let res = shard_call(
                &mut self.shards[shard],
                &router,
                &mut self.router_retries,
                &mut self.router_backoff_ns,
                |db| match db.execute_adaptive(table, &op)? {
                    (PlanOutcome::Records { records, count, report }, cost) => {
                        Ok(((records, count, cost.chosen), report.sim_ns))
                    }
                    _ => Err(NkvError::Config("scan lowered to a non-scan plan".into())),
                },
            );
            match res {
                Ok(((shard_records, shard_count, chosen), ns)) => {
                    self.shards[shard].fsm.on_success();
                    records.extend_from_slice(&shard_records);
                    count += shard_count;
                    tiers.push((shard, chosen));
                    waits.push((shard, ns));
                    sim_ns = sim_ns.max(ns);
                }
                Err(ShardCallError::Logic(e)) => return Err(e),
                Err(ShardCallError::Fault(reason)) => {
                    self.shards[shard].fsm.on_error();
                    if matches!(self.cfg.read_policy, ReadPolicy::Strict) {
                        return Err(NkvError::ShardUnavailable { shard, reason });
                    }
                    missing.push(shard);
                }
            }
        }
        self.record_router_fanout(&waits);
        Ok((ClusterScan { records, count, missing_shards: missing, sim_ns }, tiers))
    }

    /// Cluster RANGE_SCAN (`lo <= key < hi`). Under range sharding,
    /// shards whose key interval cannot intersect the range are pruned
    /// (provably empty, not "missing").
    pub fn range_scan(
        &mut self,
        table: &str,
        lo: u64,
        hi: u64,
        backend: Backend,
    ) -> NkvResult<ClusterScan> {
        let op = LogicalOp::RangeScan { lo, hi };
        self.fanout_scan(table, &op, backend, Some((lo, hi)))
    }

    /// Cluster aggregate SCAN: fan out, merge accumulators (COUNT/SUM
    /// add with wraparound, MIN/MAX compare; shards with no matching
    /// rows don't contribute).
    pub fn scan_aggregate(
        &mut self,
        table: &str,
        rules: &[FilterRule],
        agg: ndp_ir::AggOp,
        lane: u32,
        backend: Backend,
    ) -> NkvResult<ClusterAggregate> {
        self.probe_quarantined();
        let op = LogicalOp::ScanAggregate { rules: rules.to_vec(), agg, lane };
        let router = self.cfg.router;
        let mut merged: Option<(u64, bool)> = None;
        let mut missing = Vec::new();
        let mut waits: Vec<(usize, SimNs)> = Vec::new();
        let mut sim_ns: SimNs = 0;
        for shard in 0..self.shards.len() {
            if !self.shards[shard].fsm.state.serving() {
                self.unavailable(shard)?;
                missing.push(shard);
                continue;
            }
            let res = shard_call(
                &mut self.shards[shard],
                &router,
                &mut self.router_retries,
                &mut self.router_backoff_ns,
                |db| match db.execute(table, &op, backend)? {
                    PlanOutcome::Aggregate { value, any, report } => {
                        Ok(((value, any), report.sim_ns))
                    }
                    _ => Err(NkvError::Config("aggregate lowered to a non-aggregate plan".into())),
                },
            );
            match res {
                Ok(((value, any), ns)) => {
                    self.shards[shard].fsm.on_success();
                    waits.push((shard, ns));
                    sim_ns = sim_ns.max(ns);
                    merged = Some(match merged {
                        None => (value, any),
                        Some(acc) => merge_agg(agg, acc, (value, any)),
                    });
                }
                Err(ShardCallError::Logic(e)) => return Err(e),
                Err(ShardCallError::Fault(reason)) => {
                    self.shards[shard].fsm.on_error();
                    if matches!(self.cfg.read_policy, ReadPolicy::Strict) {
                        return Err(NkvError::ShardUnavailable { shard, reason });
                    }
                    missing.push(shard);
                }
            }
        }
        let (value, any) = merged.unwrap_or((0, false));
        self.record_router_fanout(&waits);
        Ok(ClusterAggregate { value, any, missing_shards: missing, sim_ns })
    }

    /// Run every client's script through the cluster: each op is routed
    /// to its shard (GET/PUT by key; SCAN fans out to every shard), each
    /// shard runs its sub-scripts through its own NVMe queue engine, and
    /// the cluster span is the slowest shard's span — the devices run in
    /// parallel. With one device this is exactly [`NkvDb::run_queued`].
    ///
    /// Queued runs are throughput experiments, not degraded-mode reads:
    /// every shard must be serving, under either read policy.
    pub fn run_queued(
        &mut self,
        table: &str,
        scripts: &[ClientScript],
        cfg: &QueueRunConfig,
    ) -> NkvResult<ClusterRunReport> {
        self.probe_quarantined();
        let n = self.shards.len();
        for shard in 0..n {
            if !self.shards[shard].fsm.state.serving() {
                self.unavailable(shard)?;
                let state = self.shards[shard].fsm.state;
                return Err(NkvError::ShardUnavailable {
                    shard,
                    reason: format!("shard is {state}"),
                });
            }
        }
        let mut parts: Vec<Vec<ClientScript>> =
            vec![vec![ClientScript::default(); scripts.len()]; n];
        for (client, script) in scripts.iter().enumerate() {
            // The QoS class travels with the client onto every shard.
            for part in parts.iter_mut() {
                part[client].priority = script.priority;
            }
            for qop in &script.ops {
                match qop {
                    QueuedOp::Get { key } => {
                        parts[self.shard_for_key(*key)][client].ops.push(qop.clone());
                    }
                    QueuedOp::Put { record } => {
                        let shard = if record.len() >= 8 {
                            self.shard_for_key(u64::from_le_bytes(
                                record[..8].try_into().unwrap_or([0; 8]),
                            ))
                        } else {
                            0
                        };
                        parts[shard][client].ops.push(qop.clone());
                    }
                    QueuedOp::Scan { .. } => {
                        for part in parts.iter_mut() {
                            part[client].ops.push(qop.clone());
                        }
                    }
                }
            }
        }
        let logical_ops: u64 = scripts.iter().map(|s| s.ops.len() as u64).sum();
        let mut completions = 0;
        let mut latency = LatencyHistogram::new();
        let mut shard_spans = Vec::with_capacity(n);
        let mut span: SimNs = 0;
        for (shard, part) in parts.iter().enumerate() {
            let slow = match self.shards[shard].db.platform_mut().device_op_admit() {
                DeviceAdmission::Rejected(kind) => {
                    self.shards[shard].fsm.on_error();
                    return Err(NkvError::ShardUnavailable {
                        shard,
                        reason: admission_reason(kind).to_string(),
                    });
                }
                DeviceAdmission::Slow { factor_x10 } => Some(factor_x10 as u64),
                DeviceAdmission::Ok => None,
            };
            let report = self.shards[shard].db.run_queued(table, part, cfg)?;
            self.shards[shard].fsm.on_success();
            let mut shard_span = report.finished_ns.saturating_sub(report.started_ns);
            if let Some(factor_x10) = slow {
                shard_span = shard_span.saturating_mul(factor_x10) / 10;
            }
            completions += report.ops();
            latency.merge(&report.latency);
            span = span.max(shard_span);
            shard_spans.push(shard_span);
        }
        let waits: Vec<(usize, SimNs)> =
            shard_spans.iter().enumerate().map(|(i, &ns)| (i, ns)).collect();
        self.record_router_fanout(&waits);
        Ok(ClusterRunReport { logical_ops, completions, span_ns: span, latency, shard_spans })
    }

    /// SCAN/RANGE_SCAN fan-out shared core. `range` enables shard
    /// pruning under range sharding.
    fn fanout_scan(
        &mut self,
        table: &str,
        op: &LogicalOp,
        backend: Backend,
        range: Option<(u64, u64)>,
    ) -> NkvResult<ClusterScan> {
        self.probe_quarantined();
        let router = self.cfg.router;
        let mut records = Vec::new();
        let mut count = 0;
        let mut missing = Vec::new();
        let mut waits: Vec<(usize, SimNs)> = Vec::new();
        let mut sim_ns: SimNs = 0;
        for shard in self.participants(range) {
            if !self.shards[shard].fsm.state.serving() {
                self.unavailable(shard)?;
                missing.push(shard);
                continue;
            }
            let res = shard_call(
                &mut self.shards[shard],
                &router,
                &mut self.router_retries,
                &mut self.router_backoff_ns,
                |db| match db.execute(table, op, backend)? {
                    PlanOutcome::Records { records, count, report } => {
                        Ok(((records, count), report.sim_ns))
                    }
                    _ => Err(NkvError::Config("scan lowered to a non-scan plan".into())),
                },
            );
            match res {
                Ok(((shard_records, shard_count), ns)) => {
                    self.shards[shard].fsm.on_success();
                    records.extend_from_slice(&shard_records);
                    count += shard_count;
                    waits.push((shard, ns));
                    sim_ns = sim_ns.max(ns);
                }
                Err(ShardCallError::Logic(e)) => return Err(e),
                Err(ShardCallError::Fault(reason)) => {
                    self.shards[shard].fsm.on_error();
                    if matches!(self.cfg.read_policy, ReadPolicy::Strict) {
                        return Err(NkvError::ShardUnavailable { shard, reason });
                    }
                    missing.push(shard);
                }
            }
        }
        self.record_router_fanout(&waits);
        Ok(ClusterScan { records, count, missing_shards: missing, sim_ns })
    }

    /// Which shards a fan-out visits. `range` (from RANGE_SCAN) prunes
    /// under range sharding: shard `s` owns `[start_s, end_s)` and is
    /// visited only when that interval intersects `[lo, hi)`.
    fn participants(&self, range: Option<(u64, u64)>) -> Vec<usize> {
        let n = self.shards.len();
        let (ShardStrategy::Range { boundaries }, Some((lo, hi))) = (&self.cfg.strategy, range)
        else {
            return (0..n).collect();
        };
        if lo >= hi {
            return Vec::new();
        }
        (0..n)
            .filter(|&s| {
                let start = if s == 0 { 0 } else { boundaries[s - 1] };
                let end = boundaries.get(s).copied();
                start < hi && end.is_none_or(|e| lo < e)
            })
            .collect()
    }

    /// Handle a not-serving shard on the read path: `Strict` errors,
    /// `Available` lets the caller record it as missing.
    fn unavailable(&self, shard: usize) -> NkvResult<()> {
        match self.cfg.read_policy {
            ReadPolicy::Strict => {
                let state = self.shards[shard].fsm.state;
                Err(NkvError::ShardUnavailable { shard, reason: format!("shard is {state}") })
            }
            ReadPolicy::Available => Ok(()),
        }
    }

    /// Write-path shard call: full router retry/backoff, but an
    /// unavailable or exhausted shard is always a typed error (writes
    /// have no partial mode).
    fn write_on<T>(
        &mut self,
        shard: usize,
        op: impl FnMut(&mut NkvDb) -> NkvResult<(T, SimNs)>,
    ) -> NkvResult<T> {
        if !self.shards[shard].fsm.state.serving() {
            let state = self.shards[shard].fsm.state;
            return Err(NkvError::ShardUnavailable { shard, reason: format!("shard is {state}") });
        }
        let router = self.cfg.router;
        match shard_call(
            &mut self.shards[shard],
            &router,
            &mut self.router_retries,
            &mut self.router_backoff_ns,
            op,
        ) {
            Ok((v, _)) => {
                self.shards[shard].fsm.on_success();
                Ok(v)
            }
            Err(ShardCallError::Logic(e)) => Err(e),
            Err(ShardCallError::Fault(reason)) => {
                self.shards[shard].fsm.on_error();
                Err(NkvError::ShardUnavailable { shard, reason })
            }
        }
    }

    /// Give every quarantined shard its probe tick. Probes go through
    /// the device admission gate — the same path real traffic takes —
    /// so a cleared fault is observed and a persisting one keeps
    /// failing, eventually tipping the shard to `Dead`.
    fn probe_quarantined(&mut self) {
        for shard in &mut self.shards {
            if shard.fsm.state == ShardState::Quarantined && shard.fsm.probe_due() {
                let ok = !matches!(
                    shard.db.platform_mut().device_op_admit(),
                    DeviceAdmission::Rejected(_)
                );
                shard.fsm.on_probe(ok);
            }
        }
    }
}

/// Merge two aggregate accumulators. Only matching sides contribute;
/// with neither matching the (meaningless) value of the first operand is
/// kept, deterministically.
fn merge_agg(agg: ndp_ir::AggOp, a: (u64, bool), b: (u64, bool)) -> (u64, bool) {
    match (a.1, b.1) {
        (true, true) => {
            let v = match agg {
                ndp_ir::AggOp::Count | ndp_ir::AggOp::Sum => a.0.wrapping_add(b.0),
                ndp_ir::AggOp::Min => a.0.min(b.0),
                ndp_ir::AggOp::Max => a.0.max(b.0),
            };
            (v, true)
        }
        (true, false) => a,
        (false, true) => b,
        (false, false) => a,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fsm(cfg: HealthFsmConfig) -> HealthFsm {
        HealthFsm::new(cfg)
    }

    #[test]
    fn hash_placement_covers_every_shard_and_is_stable() {
        let cluster = NkvCluster::new(ClusterConfig::default()).unwrap();
        let mut hit = [false; 4];
        for key in 0..256u64 {
            let s = cluster.shard_for_key(key);
            assert!(s < 4);
            assert_eq!(s, cluster.shard_for_key(key), "placement must be deterministic");
            hit[s] = true;
        }
        assert!(hit.iter().all(|&h| h), "256 keys should land on all 4 shards: {hit:?}");
    }

    #[test]
    fn range_placement_follows_the_boundaries() {
        let cfg = ClusterConfig {
            devices: 3,
            strategy: ShardStrategy::Range { boundaries: vec![100, 200] },
            ..ClusterConfig::default()
        };
        let cluster = NkvCluster::new(cfg).unwrap();
        assert_eq!(cluster.shard_for_key(0), 0);
        assert_eq!(cluster.shard_for_key(99), 0);
        assert_eq!(cluster.shard_for_key(100), 1);
        assert_eq!(cluster.shard_for_key(199), 1);
        assert_eq!(cluster.shard_for_key(200), 2);
        assert_eq!(cluster.shard_for_key(u64::MAX), 2);
    }

    #[test]
    fn range_scan_prunes_non_overlapping_shards() {
        let cfg = ClusterConfig {
            devices: 3,
            strategy: ShardStrategy::Range { boundaries: vec![100, 200] },
            ..ClusterConfig::default()
        };
        let cluster = NkvCluster::new(cfg).unwrap();
        assert_eq!(cluster.participants(Some((0, 50))), vec![0]);
        assert_eq!(cluster.participants(Some((50, 150))), vec![0, 1]);
        assert_eq!(cluster.participants(Some((100, 200))), vec![1]);
        assert_eq!(cluster.participants(Some((150, 300))), vec![1, 2]);
        assert_eq!(cluster.participants(Some((500, 500))), Vec::<usize>::new());
        assert_eq!(cluster.participants(None), vec![0, 1, 2]);
    }

    #[test]
    fn config_validation_rejects_bad_shapes() {
        let bad = |cfg: ClusterConfig| {
            assert!(matches!(NkvCluster::new(cfg), Err(NkvError::Config(_))));
        };
        bad(ClusterConfig { devices: 0, ..ClusterConfig::default() });
        bad(ClusterConfig {
            devices: 3,
            strategy: ShardStrategy::Range { boundaries: vec![10] },
            ..ClusterConfig::default()
        });
        bad(ClusterConfig {
            devices: 3,
            strategy: ShardStrategy::Range { boundaries: vec![20, 10] },
            ..ClusterConfig::default()
        });
        bad(ClusterConfig {
            health: HealthFsmConfig { window: 0, ..HealthFsmConfig::default() },
            ..ClusterConfig::default()
        });
        bad(ClusterConfig {
            health: HealthFsmConfig { window: 65, ..HealthFsmConfig::default() },
            ..ClusterConfig::default()
        });
        bad(ClusterConfig {
            health: HealthFsmConfig { quarantine_error_rate: 0.0, ..HealthFsmConfig::default() },
            ..ClusterConfig::default()
        });
        bad(ClusterConfig {
            health: HealthFsmConfig { probe_interval_ops: 0, ..HealthFsmConfig::default() },
            ..ClusterConfig::default()
        });
    }

    #[test]
    fn fsm_walks_the_failure_ladder_and_back() {
        let mut f = fsm(HealthFsmConfig::default());
        assert_eq!(f.state, ShardState::Healthy);
        f.on_error();
        assert_eq!(f.state, ShardState::Degraded);
        // Sustained errors quarantine once the window has enough samples.
        for _ in 0..3 {
            f.on_error();
        }
        assert_eq!(f.state, ShardState::Quarantined);
        // Failed probes kill it.
        f.on_probe(false);
        f.on_probe(false);
        assert_eq!(f.state, ShardState::Quarantined);
        f.on_probe(false);
        assert_eq!(f.state, ShardState::Dead);
        // Only heal revives, through Recovered back to Healthy.
        f.heal();
        assert_eq!(f.state, ShardState::Recovered);
        for _ in 0..4 {
            f.on_success();
        }
        assert_eq!(f.state, ShardState::Healthy);
    }

    #[test]
    fn fsm_successful_probe_recovers_a_quarantined_shard() {
        let mut f = fsm(HealthFsmConfig::default());
        for _ in 0..4 {
            f.on_error();
        }
        assert_eq!(f.state, ShardState::Quarantined);
        f.on_probe(true);
        assert_eq!(f.state, ShardState::Recovered);
        // The window was reset: one fresh error degrades but does not
        // immediately re-quarantine.
        f.on_error();
        assert_eq!(f.state, ShardState::Degraded);
    }

    #[test]
    fn fsm_degraded_heals_itself_after_a_run_of_successes() {
        let mut f = fsm(HealthFsmConfig::default());
        f.on_error();
        assert_eq!(f.state, ShardState::Degraded);
        for _ in 0..3 {
            f.on_success();
        }
        assert_eq!(f.state, ShardState::Degraded);
        f.on_success();
        assert_eq!(f.state, ShardState::Healthy);
    }

    #[test]
    fn fsm_probe_cadence_respects_the_interval() {
        let mut f = fsm(HealthFsmConfig { probe_interval_ops: 3, ..HealthFsmConfig::default() });
        assert!(!f.probe_due());
        assert!(!f.probe_due());
        assert!(f.probe_due());
        assert!(!f.probe_due());
    }

    #[test]
    fn merge_agg_combines_per_op_semantics() {
        use ndp_ir::AggOp;
        assert_eq!(merge_agg(AggOp::Sum, (10, true), (5, true)), (15, true));
        assert_eq!(merge_agg(AggOp::Count, (2, true), (3, true)), (5, true));
        assert_eq!(merge_agg(AggOp::Min, (10, true), (5, true)), (5, true));
        assert_eq!(merge_agg(AggOp::Max, (10, true), (5, true)), (10, true));
        assert_eq!(merge_agg(AggOp::Min, (10, true), (0, false)), (10, true));
        assert_eq!(merge_agg(AggOp::Min, (0, false), (7, true)), (7, true));
        assert_eq!(merge_agg(AggOp::Sum, (0, false), (9, false)), (0, false));
    }

    #[test]
    fn shard_state_display_is_stable() {
        assert_eq!(ShardState::Healthy.to_string(), "healthy");
        assert_eq!(ShardState::Degraded.to_string(), "degraded");
        assert_eq!(ShardState::Quarantined.to_string(), "quarantined");
        assert_eq!(ShardState::Dead.to_string(), "dead");
        assert_eq!(ShardState::Recovered.to_string(), "recovered");
    }

    #[test]
    fn severity_orders_the_ladder() {
        assert!(ShardState::Healthy.severity() < ShardState::Recovered.severity());
        assert!(ShardState::Recovered.severity() < ShardState::Degraded.severity());
        assert!(ShardState::Degraded.severity() < ShardState::Quarantined.severity());
        assert!(ShardState::Quarantined.severity() < ShardState::Dead.severity());
    }
}
