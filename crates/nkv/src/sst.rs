//! Sorted String Tables on physical flash.
//!
//! Each SST consists of key-sorted **data blocks** (32 KiB, whole
//! fixed-size records, CRC-32C protected) plus an **index block**
//! (paper, Sec. III-A: "Each SST in turn is composed by an index block
//! and a number of data blocks"). The index — block key ranges, physical
//! page addresses, a bloom filter and the tombstone list — is serialized
//! to flash pages and also kept in memory as the device-resident accessor
//! state that nKV's native computational storage maintains.
//!
//! Data blocks are exactly what the PEs consume: a dense array of packed
//! tuples, no headers, no record framing — the format-awareness lives in
//! the generated accessors, not in per-record envelopes.

use crate::error::{NkvError, NkvResult};
use crate::placement::PageAllocator;
use crate::util::{crc32c, Bloom};
use cosmos_sim::{FlashArray, PhysAddr, SimNs};

/// Metadata of one data block.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMeta {
    pub first_key: u64,
    pub last_key: u64,
    /// Physical pages holding this block, in order.
    pub pages: Vec<PhysAddr>,
    /// Payload bytes (whole records; the rest of the block is padding).
    pub bytes: u32,
    /// CRC-32C over the payload.
    pub crc: u32,
}

/// In-memory (and flash-serialized) SST metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SstMeta {
    pub id: u64,
    pub level: usize,
    pub record_bytes: usize,
    pub n_records: u64,
    pub min_key: u64,
    pub max_key: u64,
    pub blocks: Vec<BlockMeta>,
    /// Pages of the serialized index block.
    pub index_pages: Vec<PhysAddr>,
    pub bloom: Bloom,
    /// Deleted keys this SST shadows (sorted).
    pub tombstones: Vec<u64>,
}

impl SstMeta {
    /// Might this SST contain `key`? (range + bloom check)
    pub fn may_contain(&self, key: u64) -> bool {
        if self.n_records == 0 && self.tombstones.is_empty() {
            return false;
        }
        key >= self.min_key && key <= self.max_key && self.bloom.may_contain(key)
    }

    /// Is `key` tombstoned by this SST?
    pub fn is_tombstoned(&self, key: u64) -> bool {
        self.tombstones.binary_search(&key).is_ok()
    }

    /// Index of the data block whose range covers `key`, if any.
    pub fn block_for(&self, key: u64) -> Option<usize> {
        let idx = self.blocks.partition_point(|b| b.last_key < key);
        (idx < self.blocks.len() && self.blocks[idx].first_key <= key).then_some(idx)
    }

    /// Total payload bytes across data blocks.
    pub fn data_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.bytes)).sum()
    }
}

/// Builds one SST from strictly ascending records.
pub struct SstBuilder {
    id: u64,
    level: usize,
    record_bytes: usize,
    block_bytes: usize,
    table: String,
    current: Vec<u8>,
    current_first: u64,
    current_last: u64,
    blocks_data: Vec<(Vec<u8>, u64, u64)>,
    last_key: Option<u64>,
    n_records: u64,
    keys: Vec<u64>,
    tombstones: Vec<u64>,
    allow_duplicates: bool,
}

impl SstBuilder {
    /// Start building SST `id` at `level` for `record_bytes`-sized
    /// records in `block_bytes` blocks (32 KiB in the paper).
    pub fn new(
        id: u64,
        level: usize,
        record_bytes: usize,
        block_bytes: usize,
        table: &str,
    ) -> Self {
        assert!(record_bytes >= 8, "records start with a u64 key");
        assert!(block_bytes >= record_bytes);
        Self {
            id,
            level,
            record_bytes,
            block_bytes,
            table: table.to_string(),
            current: Vec::with_capacity(block_bytes),
            current_first: 0,
            current_last: 0,
            blocks_data: Vec::new(),
            last_key: None,
            n_records: 0,
            keys: Vec::new(),
            tombstones: Vec::new(),
            allow_duplicates: false,
        }
    }

    /// Allow non-decreasing (rather than strictly ascending) keys:
    /// multi-record tables such as edge lists store several records per
    /// key (lookups then return the first match; see `nkv::db` docs).
    pub fn allow_duplicate_keys(mut self) -> Self {
        self.allow_duplicates = true;
        self
    }

    /// Records that fit one block (whole records only).
    pub fn records_per_block(&self) -> usize {
        self.block_bytes / self.record_bytes
    }

    /// Append one record; keys must be strictly ascending.
    pub fn add_record(&mut self, key: u64, record: &[u8]) -> NkvResult<()> {
        if record.len() != self.record_bytes {
            return Err(NkvError::RecordSizeMismatch {
                table: self.table.clone(),
                expected: self.record_bytes,
                got: record.len(),
            });
        }
        if let Some(prev) = self.last_key {
            let unsorted = if self.allow_duplicates { key < prev } else { key <= prev };
            if unsorted {
                return Err(NkvError::UnsortedBulkLoad {
                    table: self.table.clone(),
                    prev,
                    next: key,
                });
            }
        }
        self.last_key = Some(key);
        if self.current.is_empty() {
            self.current_first = key;
        }
        self.current.extend_from_slice(record);
        self.current_last = key;
        self.n_records += 1;
        self.keys.push(key);
        if self.current.len() + self.record_bytes > self.block_bytes {
            self.seal_block();
        }
        Ok(())
    }

    /// Record a deletion this SST shadows.
    pub fn add_tombstone(&mut self, key: u64) {
        self.tombstones.push(key);
        self.keys.push(key);
    }

    fn seal_block(&mut self) {
        let data = std::mem::take(&mut self.current);
        self.blocks_data.push((data, self.current_first, self.current_last));
    }

    /// Write all blocks and the index to flash; returns the metadata and
    /// the simulated completion time.
    pub fn finish(
        mut self,
        flash: &mut FlashArray,
        alloc: &mut PageAllocator,
        now: SimNs,
    ) -> NkvResult<(SstMeta, SimNs)> {
        if !self.current.is_empty() {
            self.seal_block();
        }
        self.tombstones.sort_unstable();
        self.tombstones.dedup();

        let page_bytes = flash.config().page_bytes as usize;
        let mut done = now;
        let mut blocks = Vec::with_capacity(self.blocks_data.len());
        let mut bloom = Bloom::new(self.keys.len().max(1), 10);
        for &k in &self.keys {
            bloom.insert(k);
        }

        for (data, first, last) in &self.blocks_data {
            let n_pages = self.block_bytes.div_ceil(page_bytes);
            let pages = alloc.alloc_block(self.level, n_pages).ok_or(NkvError::OutOfSpace)?;
            for (i, &p) in pages.iter().enumerate() {
                let start = i * page_bytes;
                let end = (start + page_bytes).min(data.len());
                let slice = if start < data.len() { &data[start..end] } else { &[][..] };
                done = done.max(flash.program_page(p, slice, now)?);
            }
            blocks.push(BlockMeta {
                first_key: *first,
                last_key: *last,
                pages,
                bytes: data.len() as u32,
                crc: crc32c(data),
            });
        }

        let (min_key, max_key) = match (self.keys.iter().min(), self.keys.iter().max()) {
            (Some(&a), Some(&b)) => (a, b),
            _ => (1, 0), // empty SST: inverted range matches nothing
        };
        let mut meta = SstMeta {
            id: self.id,
            level: self.level,
            record_bytes: self.record_bytes,
            n_records: self.n_records,
            min_key,
            max_key,
            blocks,
            index_pages: Vec::new(),
            bloom,
            tombstones: self.tombstones,
        };

        // Serialize and store the index block.
        let index = serialize_index(&meta);
        let n_pages = index.len().div_ceil(page_bytes).max(1);
        let pages = alloc.alloc_block(self.level, n_pages).ok_or(NkvError::OutOfSpace)?;
        for (i, &p) in pages.iter().enumerate() {
            let start = i * page_bytes;
            let end = (start + page_bytes).min(index.len());
            let slice = if start < index.len() { &index[start..end] } else { &[][..] };
            done = done.max(flash.program_page(p, slice, now)?);
        }
        meta.index_pages = pages;
        Ok((meta, done))
    }
}

/// Read one data block's payload; verifies the CRC.
pub fn read_block(
    flash: &mut FlashArray,
    sst: &SstMeta,
    block_idx: usize,
    now: SimNs,
) -> NkvResult<(SimNs, Vec<u8>)> {
    let block = &sst.blocks[block_idx];
    let page_bytes = flash.config().page_bytes as usize;
    let mut data = Vec::with_capacity(block.bytes as usize);
    let mut done = now;
    for &p in &block.pages {
        let (t, page) = flash.read_page(p, now)?;
        done = done.max(t);
        let take = page_bytes.min(block.bytes as usize - data.len());
        data.extend_from_slice(&page[..take]);
        if data.len() >= block.bytes as usize {
            break;
        }
    }
    if crc32c(&data) != block.crc {
        return Err(NkvError::CorruptBlock { sst_id: sst.id, block: block_idx });
    }
    Ok((done, data))
}

/// Binary-search a data block for `key`; returns the record bytes.
///
/// Records shorter than their 8-byte key prefix (or a payload that does
/// not hold whole records) are corruption, not a caller bug — reported
/// as a typed error instead of panicking on the short slice.
pub fn search_block(data: &[u8], record_bytes: usize, key: u64) -> NkvResult<Option<&[u8]>> {
    if record_bytes < 8 {
        return Err(NkvError::Corrupt {
            what: "data block record (shorter than its u64 key)",
            offset: 0,
            need: 8,
            len: record_bytes,
        });
    }
    let n = data.len() / record_bytes;
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        let off = mid * record_bytes;
        let k = crate::util::le_u64(data, off, "data block record key")?;
        match k.cmp(&key) {
            std::cmp::Ordering::Less => lo = mid + 1,
            std::cmp::Ordering::Greater => hi = mid,
            std::cmp::Ordering::Equal => return Ok(Some(&data[off..off + record_bytes])),
        }
    }
    Ok(None)
}

/// Serialize the index block (manual little-endian layout; the format is
/// part of what this repository defines, see `util` docs).
pub fn serialize_index(meta: &SstMeta) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"NKVS");
    out.extend_from_slice(&1u32.to_le_bytes()); // version
    out.extend_from_slice(&meta.id.to_le_bytes());
    out.extend_from_slice(&(meta.level as u32).to_le_bytes());
    out.extend_from_slice(&(meta.record_bytes as u32).to_le_bytes());
    out.extend_from_slice(&meta.n_records.to_le_bytes());
    out.extend_from_slice(&meta.min_key.to_le_bytes());
    out.extend_from_slice(&meta.max_key.to_le_bytes());
    out.extend_from_slice(&(meta.blocks.len() as u32).to_le_bytes());
    out.extend_from_slice(&(meta.tombstones.len() as u32).to_le_bytes());
    let (bloom_words, bloom_bits, bloom_k) = meta.bloom.to_parts();
    out.extend_from_slice(&(bloom_words.len() as u32).to_le_bytes());
    out.extend_from_slice(&bloom_bits.to_le_bytes());
    out.extend_from_slice(&bloom_k.to_le_bytes());
    for b in &meta.blocks {
        out.extend_from_slice(&b.first_key.to_le_bytes());
        out.extend_from_slice(&b.last_key.to_le_bytes());
        out.extend_from_slice(&b.bytes.to_le_bytes());
        out.extend_from_slice(&b.crc.to_le_bytes());
        out.extend_from_slice(&(b.pages.len() as u32).to_le_bytes());
        for p in &b.pages {
            out.extend_from_slice(&p.channel.to_le_bytes());
            out.extend_from_slice(&p.lun.to_le_bytes());
            out.extend_from_slice(&p.page.to_le_bytes());
        }
    }
    for t in &meta.tombstones {
        out.extend_from_slice(&t.to_le_bytes());
    }
    for w in meta.bloom.to_parts().0 {
        out.extend_from_slice(&w.to_le_bytes());
    }
    let crc = crc32c(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parse a serialized index block back into metadata. The bloom filter
/// is serialized verbatim, so a deserialized index is fully equivalent to
/// the in-memory one — this is what device recovery rebuilds from
/// (see `nkv::recovery`).
pub fn deserialize_index(bytes: &[u8]) -> NkvResult<SstMeta> {
    // A tiny cursor: every truncated or malformed field is reported as
    // a typed `NkvError::Corrupt` naming the field, never a panic.
    let corrupt = |what: &'static str, offset: usize, need: usize| NkvError::Corrupt {
        what,
        offset,
        need,
        len: bytes.len(),
    };
    let u16_at = |pos: &mut usize, what| -> NkvResult<u16> {
        let v = crate::util::le_u16(bytes, *pos, what)?;
        *pos += 2;
        Ok(v)
    };
    let u32_at = |pos: &mut usize, what| -> NkvResult<u32> {
        let v = crate::util::le_u32(bytes, *pos, what)?;
        *pos += 4;
        Ok(v)
    };
    let u64_at = |pos: &mut usize, what| -> NkvResult<u64> {
        let v = crate::util::le_u64(bytes, *pos, what)?;
        *pos += 8;
        Ok(v)
    };
    if bytes.get(..4) != Some(&b"NKVS"[..]) {
        return Err(corrupt("SST index magic", 0, 4));
    }
    let mut pos = 4usize;
    let _version = u32_at(&mut pos, "SST index version")?;
    let id = u64_at(&mut pos, "SST index id")?;
    let level = u32_at(&mut pos, "SST index level")? as usize;
    let record_bytes = u32_at(&mut pos, "SST index record size")? as usize;
    let n_records = u64_at(&mut pos, "SST index record count")?;
    let min_key = u64_at(&mut pos, "SST index min key")?;
    let max_key = u64_at(&mut pos, "SST index max key")?;
    let n_blocks = u32_at(&mut pos, "SST index block count")? as usize;
    let n_tomb = u32_at(&mut pos, "SST index tombstone count")? as usize;
    let bloom_words = u32_at(&mut pos, "SST index bloom word count")? as usize;
    let bloom_bits = u64_at(&mut pos, "SST index bloom bits")?;
    let bloom_k = u32_at(&mut pos, "SST index bloom probes")?;
    if record_bytes < 8 {
        return Err(corrupt("SST index record size (below the 8-byte key)", pos, 8));
    }
    // Counts come from untrusted bytes: bound them by what the buffer
    // could possibly hold before reserving memory for them.
    let remaining = bytes.len().saturating_sub(pos);
    if n_blocks > remaining / 28 {
        return Err(corrupt("SST index block table", pos, n_blocks.saturating_mul(28)));
    }
    let mut blocks = Vec::with_capacity(n_blocks);
    for _ in 0..n_blocks {
        let first_key = u64_at(&mut pos, "SST block first key")?;
        let last_key = u64_at(&mut pos, "SST block last key")?;
        let bytes_len = u32_at(&mut pos, "SST block payload size")?;
        let crc = u32_at(&mut pos, "SST block CRC")?;
        let n_pages = u32_at(&mut pos, "SST block page count")? as usize;
        let page_room = bytes.len().saturating_sub(pos);
        if n_pages > page_room / 8 {
            return Err(corrupt("SST block page list", pos, n_pages.saturating_mul(8)));
        }
        let mut pages = Vec::with_capacity(n_pages);
        for _ in 0..n_pages {
            let channel = u16_at(&mut pos, "SST page channel")?;
            let lun = u16_at(&mut pos, "SST page LUN")?;
            let page = u32_at(&mut pos, "SST page number")?;
            pages.push(PhysAddr { channel, lun, page });
        }
        blocks.push(BlockMeta { first_key, last_key, pages, bytes: bytes_len, crc });
    }
    let tomb_room = bytes.len().saturating_sub(pos);
    if n_tomb > tomb_room / 8 {
        return Err(corrupt("SST tombstone list", pos, n_tomb.saturating_mul(8)));
    }
    let mut tombstones = Vec::with_capacity(n_tomb);
    for _ in 0..n_tomb {
        tombstones.push(u64_at(&mut pos, "SST tombstone key")?);
    }
    let bloom_room = bytes.len().saturating_sub(pos);
    if bloom_words > bloom_room / 8 {
        return Err(corrupt("SST bloom words", pos, bloom_words.saturating_mul(8)));
    }
    let mut words = Vec::with_capacity(bloom_words);
    for _ in 0..bloom_words {
        words.push(u64_at(&mut pos, "SST bloom word")?);
    }
    let crc_stored = u32_at(&mut pos, "SST index CRC trailer")?;
    if crc32c(&bytes[..pos - 4]) != crc_stored {
        return Err(corrupt("SST index CRC trailer (mismatch)", pos - 4, 4));
    }
    if words.len() as u64 * 64 != bloom_bits || bloom_k == 0 || bloom_k > 12 {
        return Err(corrupt("SST bloom geometry", pos, 0));
    }
    let bloom = Bloom::from_parts(words, bloom_bits, bloom_k);
    Ok(SstMeta {
        id,
        level,
        record_bytes,
        n_records,
        min_key,
        max_key,
        blocks,
        index_pages: Vec::new(),
        bloom,
        tombstones,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_sim::FlashConfig;

    fn record(key: u64, size: usize) -> Vec<u8> {
        let mut v = key.to_le_bytes().to_vec();
        v.resize(size, (key % 251) as u8);
        v
    }

    fn build(n: u64, record_bytes: usize) -> (FlashArray, SstMeta) {
        let mut flash = FlashArray::new(FlashConfig::default());
        let mut alloc = PageAllocator::new(flash.config());
        let mut b = SstBuilder::new(1, 1, record_bytes, 32 * 1024, "t");
        for k in 1..=n {
            b.add_record(k * 2, &record(k * 2, record_bytes)).unwrap();
        }
        let (meta, _) = b.finish(&mut flash, &mut alloc, 0).unwrap();
        (flash, meta)
    }

    #[test]
    fn builder_packs_whole_records_per_block() {
        let (_, meta) = build(5000, 20);
        // 32768 / 20 = 1638 records per block.
        assert_eq!(meta.blocks[0].bytes, 1638 * 20);
        assert_eq!(meta.n_records, 5000);
        assert_eq!(meta.blocks.len(), 4); // 1638*3 = 4914, +86 in block 4
        assert_eq!(meta.min_key, 2);
        assert_eq!(meta.max_key, 10_000);
    }

    #[test]
    fn block_ranges_partition_the_key_space() {
        let (_, meta) = build(5000, 20);
        for w in meta.blocks.windows(2) {
            assert!(w[0].last_key < w[1].first_key);
        }
        assert_eq!(meta.block_for(2), Some(0));
        assert_eq!(meta.block_for(10_000), Some(3));
        assert_eq!(meta.block_for(10_001), None);
        // A key between records still maps to the covering block (the
        // record search inside the block then misses).
        assert_eq!(meta.block_for(3), Some(0));
    }

    #[test]
    fn read_block_round_trips_and_search_finds_records() {
        let (mut flash, meta) = build(5000, 20);
        let (_, data) = read_block(&mut flash, &meta, 1, 0).unwrap();
        assert_eq!(data.len() as u32, meta.blocks[1].bytes);
        let key = meta.blocks[1].first_key + 2 * 2; // second record in block
        let rec = search_block(&data, 20, key).unwrap().unwrap();
        assert_eq!(rec, &record(key, 20)[..]);
        assert!(search_block(&data, 20, key + 1).unwrap().is_none());
    }

    #[test]
    fn search_block_reports_short_records_as_corruption() {
        let data = vec![0u8; 32];
        assert!(matches!(
            search_block(&data, 4, 1),
            Err(NkvError::Corrupt { need: 8, len: 4, .. })
        ));
    }

    #[test]
    fn crc_detects_flash_corruption() {
        let (mut flash, mut meta) = build(100, 20);
        meta.blocks[0].crc ^= 1; // simulate a stale/corrupt index entry
        let err = read_block(&mut flash, &meta, 0, 0).unwrap_err();
        assert!(matches!(err, NkvError::CorruptBlock { sst_id: 1, block: 0 }));
    }

    #[test]
    fn unsorted_and_duplicate_records_rejected() {
        let mut b = SstBuilder::new(1, 1, 20, 32 * 1024, "t");
        b.add_record(10, &record(10, 20)).unwrap();
        assert!(matches!(
            b.add_record(10, &record(10, 20)),
            Err(NkvError::UnsortedBulkLoad { .. })
        ));
        assert!(matches!(b.add_record(5, &record(5, 20)), Err(NkvError::UnsortedBulkLoad { .. })));
    }

    #[test]
    fn wrong_record_size_rejected() {
        let mut b = SstBuilder::new(1, 1, 20, 32 * 1024, "t");
        assert!(matches!(
            b.add_record(1, &record(1, 24)),
            Err(NkvError::RecordSizeMismatch { expected: 20, got: 24, .. })
        ));
    }

    #[test]
    fn bloom_and_range_pruning() {
        let (_, meta) = build(1000, 20);
        assert!(meta.may_contain(2));
        assert!(!meta.may_contain(1), "below min");
        assert!(!meta.may_contain(99_999), "above max");
        // Odd keys were never inserted; the bloom rejects almost all.
        let fp = (0..1000).map(|i| 2 * i + 1).filter(|&k| meta.may_contain(k)).count();
        assert!(fp < 40, "bloom too leaky: {fp}");
    }

    #[test]
    fn tombstones_are_sorted_and_searchable() {
        let mut flash = FlashArray::new(FlashConfig::default());
        let mut alloc = PageAllocator::new(flash.config());
        let mut b = SstBuilder::new(9, 1, 20, 32 * 1024, "t");
        b.add_tombstone(50);
        b.add_record(10, &record(10, 20)).unwrap();
        b.add_tombstone(7);
        let (meta, _) = b.finish(&mut flash, &mut alloc, 0).unwrap();
        assert!(meta.is_tombstoned(7));
        assert!(meta.is_tombstoned(50));
        assert!(!meta.is_tombstoned(10));
        assert_eq!(meta.min_key, 7, "tombstones participate in the key range");
    }

    #[test]
    fn index_serialization_round_trips() {
        let (_, meta) = build(5000, 20);
        let bytes = serialize_index(&meta);
        let back = deserialize_index(&bytes).unwrap();
        assert_eq!(back.id, meta.id);
        assert_eq!(back.n_records, meta.n_records);
        assert_eq!(back.blocks, meta.blocks);
        assert_eq!(back.tombstones, meta.tombstones);
        assert_eq!(back.min_key, meta.min_key);
        assert_eq!(back.bloom, meta.bloom, "blooms round-trip exactly");
    }

    #[test]
    fn index_deserialization_rejects_corruption() {
        let (_, meta) = build(100, 20);
        let mut bytes = serialize_index(&meta);
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(deserialize_index(&bytes).is_err());
        assert!(deserialize_index(b"JUNK").is_err());
        assert!(deserialize_index(&[]).is_err());
    }

    #[test]
    fn truncated_index_pages_fail_typed_at_every_length() {
        // Fuzz corpus for the decode path: every proper prefix of a
        // valid index must come back as a typed error — never a panic,
        // never Ok (the CRC trailer is inside the truncated tail).
        let (_, meta) = build(5000, 20);
        let bytes = serialize_index(&meta);
        for cut in 0..bytes.len() {
            match deserialize_index(&bytes[..cut]) {
                Err(NkvError::Corrupt { .. } | NkvError::CorruptBlock { .. }) => {}
                other => panic!("prefix of {cut} bytes decoded as {other:?}"),
            }
        }
    }

    #[test]
    fn mutated_index_headers_never_panic() {
        // Byte-level mutation sweep over the header region: decoding
        // must either reject the page or round-trip to *some* metadata,
        // but it must never panic or over-allocate on hostile counts.
        let (_, meta) = build(100, 20);
        let bytes = serialize_index(&meta);
        let header = bytes.len().min(64);
        for off in 0..header {
            for flip in [0x01u8, 0xFF] {
                let mut corrupted = bytes.clone();
                corrupted[off] ^= flip;
                let _ = deserialize_index(&corrupted);
            }
        }
    }

    #[test]
    fn index_block_is_stored_on_flash() {
        let (mut flash, meta) = build(1000, 20);
        assert!(!meta.index_pages.is_empty());
        let (_, page) = flash.read_page(meta.index_pages[0], 0).unwrap();
        assert_eq!(&page[..4], b"NKVS");
    }

    #[test]
    fn empty_sst_matches_nothing() {
        let mut flash = FlashArray::new(FlashConfig::default());
        let mut alloc = PageAllocator::new(flash.config());
        let b = SstBuilder::new(1, 1, 20, 32 * 1024, "t");
        let (meta, _) = b.finish(&mut flash, &mut alloc, 0).unwrap();
        assert!(!meta.may_contain(0));
        assert!(!meta.may_contain(1));
        assert_eq!(meta.blocks.len(), 0);
    }
}
