//! Shared execution-engine plumbing.
//!
//! The firmware's GET/SCAN/aggregate loops all need the same four
//! services: retrying flash reads with backoff, claiming a healthy PE
//! under the watchdog/degradation policy, dispatching one block job to
//! a PE (ARM register configuration + PE streaming + DRAM traffic), and
//! falling back to the ARM oracle when no PE is available. Each used to
//! carry its own copy inside `exec.rs`; they live here exactly once so
//! every backend — software, hardware, and future plan-driven paths —
//! shares one resilience and accounting implementation.

use crate::error::{NkvError, NkvResult};
use crate::exec::{HealthCounters, ResilienceConfig, TableExec};
use crate::sst::{read_block, SstMeta};
use cosmos_sim::dram::DramClient;
use cosmos_sim::{timing, CosmosPlatform, FlashArray, SimNs};

/// Run `attempt_read` at increasing simulated times until it succeeds,
/// fails non-retryably, or exhausts the retry budget. Backoff before
/// retry `n` is `backoff_base_ns << (n - 1)` (capped shift); every
/// retry and the backoff time are accounted in `health`. Exhaustion
/// surfaces as [`NkvError::RetriesExhausted`] with the given identity.
pub(crate) fn retry_read<T>(
    res: &ResilienceConfig,
    health: &mut HealthCounters,
    sst_id: u64,
    block: usize,
    now: SimNs,
    mut attempt_read: impl FnMut(SimNs) -> NkvResult<T>,
) -> NkvResult<T> {
    let mut at = now;
    let mut attempt = 0u32;
    loop {
        match attempt_read(at) {
            Err(NkvError::Flash(e)) if e.is_retryable() => {
                attempt += 1;
                if attempt > res.max_read_retries {
                    health.reads_failed += 1;
                    return Err(NkvError::RetriesExhausted { sst_id, block, attempts: attempt });
                }
                health.read_retries += 1;
                let backoff = res.backoff_base_ns << (attempt - 1).min(16);
                health.retry_backoff_ns += backoff;
                at += backoff;
            }
            other => return other,
        }
    }
}

/// Retrying wrapper around [`read_block`]: transient failures back off
/// in simulated time and retry; budget exhaustion becomes the typed
/// [`NkvError::RetriesExhausted`]. Non-retryable errors pass through.
pub(crate) fn read_block_resilient(
    flash: &mut FlashArray,
    res: &ResilienceConfig,
    health: &mut HealthCounters,
    sst: &SstMeta,
    block_idx: usize,
    now: SimNs,
) -> NkvResult<(SimNs, Vec<u8>)> {
    retry_read(res, health, sst.id, block_idx, now, |at| read_block(flash, sst, block_idx, at))
}

/// Retrying read of an SST's index page (same policy as data blocks;
/// the page content is already cached in the metadata, only the flash
/// time matters). Returns the read-completion time.
pub(crate) fn read_index_page_resilient(
    platform: &mut CosmosPlatform,
    res: &ResilienceConfig,
    health: &mut HealthCounters,
    sst_id: u64,
    page: cosmos_sim::PhysAddr,
    now: SimNs,
) -> NkvResult<SimNs> {
    // `usize::MAX` marks the index page (not a data block) in the error.
    let flash = &mut platform.flash;
    retry_read(res, health, sst_id, usize::MAX, now, |at| {
        flash.read_page(page, at).map(|(done, _)| done).map_err(NkvError::from)
    })
}

/// Next non-failed PE in round-robin order, advancing `rr` past it;
/// `None` once every PE has been marked failed.
pub(crate) fn next_healthy_pe(failed: &[bool], n_pes: usize, rr: &mut usize) -> Option<usize> {
    let n = n_pes.max(1);
    for _ in 0..n {
        let d = *rr % n;
        *rr += 1;
        if !failed.get(d).copied().unwrap_or(false) {
            return Some(d);
        }
    }
    None
}

/// Where one block runs after the PE claim is resolved.
pub(crate) enum PeGrant {
    /// Dispatch to this PE index.
    Hw(usize),
    /// Process on the ARM; `hung` is set when a fresh watchdog trip led
    /// here (the caller charges `watchdog_ns` before resuming).
    Sw { hung: bool },
}

/// Claim `candidate` for one block job: roll the platform's hang fault,
/// account watchdog trips and software fallbacks, and decide where the
/// block runs. A hung PE is retired for the session; with
/// `hw_fallback_to_sw` disabled the hang fails the operation with
/// [`NkvError::PeTimeout`] instead of degrading. `count_fallback` is
/// false for blocks that were never HW-eligible (the fixed-block
/// baseline's software tail block).
pub(crate) fn claim_pe(
    platform: &mut CosmosPlatform,
    exec: &mut TableExec,
    candidate: Option<usize>,
    count_fallback: bool,
) -> NkvResult<PeGrant> {
    // Watchdog: a hung PE never raises DONE; the firmware's poll times
    // out, the PE is retired and the block degrades to software.
    let hang = candidate.is_some() && platform.roll_pe_hang();
    if hang {
        let d = candidate.expect("hang implies a selected PE");
        exec.health.watchdog_trips += 1;
        if let Some(f) = exec.pe_failed.get_mut(d) {
            *f = true;
        }
        if !exec.resilience.hw_fallback_to_sw {
            return Err(NkvError::PeTimeout { pe: d, watchdog_ns: exec.resilience.watchdog_ns });
        }
    }
    match candidate {
        Some(d) if !hang => Ok(PeGrant::Hw(d)),
        _ => {
            if count_fallback {
                exec.health.sw_fallback_blocks += 1;
            }
            Ok(PeGrant::Sw { hung: hang })
        }
    }
}

/// The time a degraded block resumes on the ARM: after the watchdog
/// timeout on a fresh hang, immediately otherwise.
pub(crate) fn sw_resume_at(exec: &TableExec, staged: SimNs, hung: bool) -> SimNs {
    if hung {
        staged + exec.resilience.watchdog_ns
    } else {
        staged
    }
}

/// Charge the ARM for one software filter pass over `bytes` of staged
/// data, starting no earlier than `resume`; returns the finish time.
pub(crate) fn arm_filter(platform: &mut CosmosPlatform, resume: SimNs, bytes: u64) -> SimNs {
    let (_, t) = platform.arm.schedule(resume, platform.arm_filter_ns(bytes));
    t
}

/// Schedule one hardware block job on PE `d`: the ARM writes the config
/// registers at `staged`, the PE streams the block for `cycles`, and
/// the PE's DRAM traffic rides the shared port — a load of `load_bytes`
/// at config-done (when given) and a store of `store_bytes` at PE-done
/// (when given). Returns the job's completion time: the store's finish
/// when it stores, the PE's finish otherwise. GET/SCAN/aggregate differ
/// only in which sides of the DRAM traffic exist.
#[allow(clippy::too_many_arguments)]
pub(crate) fn schedule_hw_job(
    platform: &mut CosmosPlatform,
    exec: &mut TableExec,
    d: usize,
    staged: SimNs,
    cycles: u64,
    w: u64,
    r: u64,
    load_bytes: Option<u64>,
    store_bytes: Option<u64>,
) -> SimNs {
    let cfg_ns = platform.mmio_cost_ns(w, r);
    let (cfg_start, cfg_done) = platform.arm.schedule(staged, cfg_ns);
    platform.trace_reg_access(d as u32, cfg_start, cfg_ns, w, r);
    let (pe_start, pe_done) = exec.pe_servers[d].schedule(cfg_done, cycles * timing::PL_CLK_NS);
    platform.trace_pe_job(d as u32, pe_start, pe_done - pe_start, cycles);
    if let Some(bytes) = load_bytes {
        let _ = platform.dram.timed_transfer(DramClient::PeLoad, bytes, cfg_done);
    }
    match store_bytes {
        Some(bytes) => platform.dram.timed_transfer(DramClient::PeStore, bytes, pe_done),
        None => pe_done,
    }
}
