//! The plan-driven execution engine.
//!
//! Every backend of a [`crate::plan::PhysicalPlan`] — software,
//! hardware, hybrid, and the parallel-PE scan — runs through the three
//! entry points here ([`run_scan`], [`run_scan_aggregate`],
//! [`run_get`]); `exec.rs` keeps only the legacy-compatible wrappers.
//!
//! The shared plumbing all of them need — retrying flash reads with
//! backoff, claiming a healthy PE under the watchdog/degradation
//! policy, dispatching one block job to a PE (ARM register
//! configuration + PE streaming + DRAM traffic), and falling back to
//! the ARM oracle when no PE is available — lives here exactly once;
//! `exec.rs` used to carry three hand-rolled copies.
//!
//! # Parallel scan
//!
//! A plan with `parallel_pes = n >= 1` splits a scan's block list into
//! `n` per-worker streams by flash-channel group (every block's pages
//! live on one channel; see `placement::worker_for_channel`). Each
//! worker owns one PE and one staging buffer and processes its stream
//! *strictly serially* — block `k+1` is issued only once block `k` is
//! consumed — so the streams model bounded per-worker staging rather
//! than the serial path's idealized issue-everything-at-start firmware
//! loop. The worker chains overlap in simulated time on the shared
//! timelines (flash controllers, DRAM port, ARM), which therefore run
//! in gap-aware backfill mode for the duration of the block phase
//! ([`cosmos_sim::CosmosPlatform::set_parallel_dispatch`]). Results
//! merge deterministically in global (component, block) order before
//! the shared reconciliation pass, so a parallel scan returns exactly
//! the serial plan's bytes.

use crate::error::{NkvError, NkvResult};
use crate::exec::{DramBus, HealthCounters, ResilienceConfig, SimReport, TableExec};
use crate::lsm::LsmTree;
use crate::memtable::Entry;
use crate::metrics::LatencyHistogram;
use crate::placement::worker_for_channel;
use crate::plan::{Backend, PhysOp, PhysicalPlan};
use crate::sst::{read_block, search_block, SstMeta};
use cosmos_sim::dram::DramClient;
use cosmos_sim::{timing, CosmosPlatform, FlashArray, SimNs};
use ndp_pe::oracle::FilterRule;
use ndp_pe::pipeline::estimate_block_cycles;
use ndp_swgen::{DriverProfile, FilterJob};
use std::collections::HashMap;

/// Per-driver DRAM staging layout: input buffer then output buffer.
const STAGE_STRIDE: u64 = 256 * 1024;
const STAGE_OUT_OFF: u64 = 128 * 1024;

/// Backoff charged before retry `attempt` (1-based):
/// `backoff_base_ns << (attempt - 1)`, shift capped so a hostile retry
/// budget cannot overflow. One definition shared by the block-read
/// retry loop below and the cluster router's per-shard retry wrapper.
pub(crate) fn backoff_before_retry(res: &ResilienceConfig, attempt: u32) -> SimNs {
    res.backoff_base_ns << attempt.saturating_sub(1).min(16)
}

/// Run `attempt_read` at increasing simulated times until it succeeds,
/// fails non-retryably, or exhausts the retry budget. Backoff before
/// retry `n` is `backoff_base_ns << (n - 1)` (capped shift); every
/// retry and the backoff time are accounted in `health`. Exhaustion
/// surfaces as [`NkvError::RetriesExhausted`] with the given identity.
pub(crate) fn retry_read<T>(
    res: &ResilienceConfig,
    health: &mut HealthCounters,
    sst_id: u64,
    block: usize,
    now: SimNs,
    mut attempt_read: impl FnMut(SimNs) -> NkvResult<T>,
) -> NkvResult<T> {
    let mut at = now;
    let mut attempt = 0u32;
    loop {
        match attempt_read(at) {
            Err(NkvError::Flash(e)) if e.is_retryable() => {
                attempt += 1;
                if attempt > res.max_read_retries {
                    health.reads_failed += 1;
                    return Err(NkvError::RetriesExhausted { sst_id, block, attempts: attempt });
                }
                health.read_retries += 1;
                let backoff = backoff_before_retry(res, attempt);
                health.retry_backoff_ns += backoff;
                at += backoff;
            }
            other => return other,
        }
    }
}

/// Retrying wrapper around [`read_block`]: transient failures back off
/// in simulated time and retry; budget exhaustion becomes the typed
/// [`NkvError::RetriesExhausted`]. Non-retryable errors pass through.
pub(crate) fn read_block_resilient(
    flash: &mut FlashArray,
    res: &ResilienceConfig,
    health: &mut HealthCounters,
    sst: &SstMeta,
    block_idx: usize,
    now: SimNs,
) -> NkvResult<(SimNs, Vec<u8>)> {
    retry_read(res, health, sst.id, block_idx, now, |at| read_block(flash, sst, block_idx, at))
}

/// Retrying read of an SST's index page (same policy as data blocks;
/// the page content is already cached in the metadata, only the flash
/// time matters). Returns the read-completion time.
pub(crate) fn read_index_page_resilient(
    platform: &mut CosmosPlatform,
    res: &ResilienceConfig,
    health: &mut HealthCounters,
    sst_id: u64,
    page: cosmos_sim::PhysAddr,
    now: SimNs,
) -> NkvResult<SimNs> {
    // `usize::MAX` marks the index page (not a data block) in the error.
    let flash = &mut platform.flash;
    retry_read(res, health, sst_id, usize::MAX, now, |at| {
        flash.read_page(page, at).map(|(done, _)| done).map_err(NkvError::from)
    })
}

/// Cache-aware staged read of one SST data block. On a device-DRAM
/// block-cache hit the block bursts from DRAM into the staging buffer
/// over the shared port — no flash traffic, no flash-DMA transfer — and
/// a `cache_hit` span is traced. On a miss the resilient flash read
/// runs exactly as before, the flash DMA stages the block, and the
/// block is admitted to the cache. With the cache disabled (the
/// default) this is the legacy read + stage path bit for bit. Returns
/// the staging-complete time and the block bytes.
pub(crate) fn staged_block_read(
    platform: &mut CosmosPlatform,
    exec: &mut TableExec,
    sst: &SstMeta,
    block_idx: usize,
    now: SimNs,
) -> NkvResult<(SimNs, Vec<u8>)> {
    let hit = platform.cache_mut().and_then(|c| c.lookup(sst.id, block_idx)).map(|d| d.to_vec());
    if let Some(data) = hit {
        let staged = platform.dram.timed_transfer(DramClient::CacheHit, data.len() as u64, now);
        platform.trace_cache_hit(sst.id, block_idx as u64, data.len() as u64, now, staged - now);
        return Ok((staged, data));
    }
    let (flash_done, data) = read_block_resilient(
        &mut platform.flash,
        &exec.resilience,
        &mut exec.health,
        sst,
        block_idx,
        now,
    )?;
    let staged = platform.dram.timed_transfer(DramClient::FlashDma, data.len() as u64, flash_done);
    if let Some(c) = platform.cache_mut() {
        c.insert(sst.id, block_idx, data.clone());
    }
    Ok((staged, data))
}

/// Cache-aware read of one SST block for the reconciliation shadow
/// check. The ARM consumes the block in place, so — unlike
/// [`staged_block_read`] — a miss keeps the legacy timing exactly (the
/// resilient flash read alone, no staging transfer); a hit is one
/// DRAM-port burst. Misses still admit the block.
pub(crate) fn confirm_block_read(
    platform: &mut CosmosPlatform,
    exec: &mut TableExec,
    sst: &SstMeta,
    block_idx: usize,
    now: SimNs,
) -> NkvResult<(SimNs, Vec<u8>)> {
    let hit = platform.cache_mut().and_then(|c| c.lookup(sst.id, block_idx)).map(|d| d.to_vec());
    if let Some(data) = hit {
        let done = platform.dram.timed_transfer(DramClient::CacheHit, data.len() as u64, now);
        platform.trace_cache_hit(sst.id, block_idx as u64, data.len() as u64, now, done - now);
        return Ok((done, data));
    }
    let (done, data) = read_block_resilient(
        &mut platform.flash,
        &exec.resilience,
        &mut exec.health,
        sst,
        block_idx,
        now,
    )?;
    if let Some(c) = platform.cache_mut() {
        c.insert(sst.id, block_idx, data.clone());
    }
    Ok((done, data))
}

/// Cache-aware read of an SST's index page, keyed
/// `(sst_id, INDEX_BLOCK)`. The page *content* already lives in the SST
/// metadata — only the timing and the cache-budget occupancy of one
/// flash page are modeled — so a hit is a page-sized DRAM burst and a
/// miss is the legacy resilient flash-page read plus admission.
pub(crate) fn index_page_read(
    platform: &mut CosmosPlatform,
    exec: &mut TableExec,
    sst_id: u64,
    page: cosmos_sim::PhysAddr,
    now: SimNs,
) -> NkvResult<SimNs> {
    let bytes = u64::from(platform.flash.config().page_bytes);
    let hit =
        platform.cache_mut().is_some_and(|c| c.lookup(sst_id, cosmos_sim::INDEX_BLOCK).is_some());
    if hit {
        let done = platform.dram.timed_transfer(DramClient::CacheHit, bytes, now);
        platform.trace_cache_hit(sst_id, u64::MAX, bytes, now, done - now);
        return Ok(done);
    }
    let done =
        read_index_page_resilient(platform, &exec.resilience, &mut exec.health, sst_id, page, now)?;
    if let Some(c) = platform.cache_mut() {
        c.insert(sst_id, cosmos_sim::INDEX_BLOCK, vec![0u8; bytes as usize]);
    }
    Ok(done)
}

/// Next non-failed PE in round-robin order, advancing `rr` past it;
/// `None` once every PE has been marked failed.
pub(crate) fn next_healthy_pe(failed: &[bool], n_pes: usize, rr: &mut usize) -> Option<usize> {
    let n = n_pes.max(1);
    for _ in 0..n {
        let d = *rr % n;
        *rr += 1;
        if !failed.get(d).copied().unwrap_or(false) {
            return Some(d);
        }
    }
    None
}

/// Where one block runs after the PE claim is resolved.
pub(crate) enum PeGrant {
    /// Dispatch to this PE index.
    Hw(usize),
    /// Process on the ARM; `hung` is set when a fresh watchdog trip led
    /// here (the caller charges `watchdog_ns` before resuming).
    Sw { hung: bool },
}

/// Claim `candidate` for one block job: roll the platform's hang fault,
/// account watchdog trips and software fallbacks, and decide where the
/// block runs. A hung PE is retired for the session; with
/// `hw_fallback_to_sw` disabled the hang fails the operation with
/// [`NkvError::PeTimeout`] instead of degrading. `count_fallback` is
/// false for blocks that were never HW-eligible (the fixed-block
/// baseline's software tail block).
pub(crate) fn claim_pe(
    platform: &mut CosmosPlatform,
    exec: &mut TableExec,
    candidate: Option<usize>,
    count_fallback: bool,
) -> NkvResult<PeGrant> {
    // Watchdog: a hung PE never raises DONE; the firmware's poll times
    // out, the PE is retired and the block degrades to software. The
    // hang fault is rolled only when a PE was actually selected — the
    // RNG draw order matches the paired no-fault run — and the hang is
    // handled inside the same `if let`, so no unwrap can abort the
    // device when a hostile fault plan fires with no PE left.
    let mut hung = false;
    if let Some(d) = candidate {
        if platform.roll_pe_hang() {
            hung = true;
            exec.health.watchdog_trips += 1;
            if let Some(f) = exec.pe_failed.get_mut(d) {
                *f = true;
            }
            if !exec.resilience.hw_fallback_to_sw {
                return Err(NkvError::PeTimeout {
                    pe: d,
                    watchdog_ns: exec.resilience.watchdog_ns,
                });
            }
        }
    }
    match candidate {
        Some(d) if !hung => Ok(PeGrant::Hw(d)),
        _ => {
            if count_fallback {
                exec.health.sw_fallback_blocks += 1;
            }
            Ok(PeGrant::Sw { hung })
        }
    }
}

/// The time a degraded block resumes on the ARM: after the watchdog
/// timeout on a fresh hang, immediately otherwise.
pub(crate) fn sw_resume_at(exec: &TableExec, staged: SimNs, hung: bool) -> SimNs {
    if hung {
        staged + exec.resilience.watchdog_ns
    } else {
        staged
    }
}

/// Charge the ARM for one software filter pass over `bytes` of staged
/// data, starting no earlier than `resume`; returns the finish time.
pub(crate) fn arm_filter(platform: &mut CosmosPlatform, resume: SimNs, bytes: u64) -> SimNs {
    let (_, t) = platform.arm.schedule(resume, platform.arm_filter_ns(bytes));
    t
}

/// Schedule one hardware block job on PE `d`: the ARM writes the config
/// registers at `staged`, the PE streams the block for `cycles`, and
/// the PE's DRAM traffic rides the shared port — a load of `load_bytes`
/// at config-done (when given) and a store of `store_bytes` at PE-done
/// (when given). Returns the job's completion time: the store's finish
/// when it stores, the PE's finish otherwise. GET/SCAN/aggregate differ
/// only in which sides of the DRAM traffic exist.
#[allow(clippy::too_many_arguments)]
pub(crate) fn schedule_hw_job(
    platform: &mut CosmosPlatform,
    exec: &mut TableExec,
    d: usize,
    staged: SimNs,
    cycles: u64,
    w: u64,
    r: u64,
    load_bytes: Option<u64>,
    store_bytes: Option<u64>,
) -> SimNs {
    let cfg_ns = platform.mmio_cost_ns(w, r);
    let (cfg_start, cfg_done) = platform.arm.schedule(staged, cfg_ns);
    platform.trace_reg_access(d as u32, cfg_start, cfg_ns, w, r);
    let (pe_start, pe_done) = exec.pe_servers[d].schedule(cfg_done, cycles * timing::PL_CLK_NS);
    platform.trace_pe_job(d as u32, pe_start, pe_done - pe_start, cycles);
    if let Some(bytes) = load_bytes {
        let _ = platform.dram.timed_transfer(DramClient::PeLoad, bytes, cfg_done);
    }
    match store_bytes {
        Some(bytes) => platform.dram.timed_transfer(DramClient::PeStore, bytes, pe_done),
        None => pe_done,
    }
}

/// The `eq` operator code of a table's op set (always present in the
/// standard set; panics if a custom-only set removed it).
fn eq_code(_ops: &ndp_pe::oracle::OpTable) -> u32 {
    // The standard encoding from ndp-ir: nop=0, ne=1, eq=2.
    2
}

/// How a hardware block job configures the PE.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PeInvoke {
    /// First block of an op: full reconfiguration, rule cache
    /// invalidated first (the legacy `first_block = true`).
    Cold,
    /// Steady-state scan block: rules are cached, addresses/lengths are
    /// rewritten (the legacy `first_block = false`).
    Warm,
    /// Batched-GET steady state: the PL key-list walker re-points the
    /// descriptor registers itself; the ARM pays a single START strobe
    /// (`timing::BATCH_KEY_CFG_WRITES`/`READS`).
    Keyed,
}

/// One block's worth of hardware filtering (shared by GET and SCAN).
/// Returns `(tuples_in, tuples_out, pe_cycles, io_writes, io_reads,
/// bytes_written)`.
#[allow(clippy::too_many_arguments)]
fn hw_filter_block(
    exec: &mut TableExec,
    dram: &mut cosmos_sim::Dram,
    data: &[u8],
    rules: &[FilterRule],
    driver_idx: usize,
    invoke: PeInvoke,
    out: &mut Vec<u8>,
) -> (u64, u64, u64, u64, u64, u64) {
    if exec.cycle_accurate {
        let in_addr = driver_idx as u64 * STAGE_STRIDE;
        let out_addr = in_addr + STAGE_OUT_OFF;
        dram.write(in_addr, data);
        let drv = &mut exec.drivers[driver_idx];
        if invoke == PeInvoke::Cold {
            drv.invalidate_config_cache();
        }
        let job = FilterJob {
            src: in_addr,
            len: data.len() as u32,
            dst: out_addr,
            capacity: (STAGE_STRIDE - STAGE_OUT_OFF) as u32,
            rules: rules.to_vec(),
            aggregate: None,
        };
        let res = if invoke == PeInvoke::Keyed {
            let handle = drv.launch_keyed(&job);
            drv.complete_keyed(&mut DramBus(dram), handle)
        } else {
            let handle = drv.launch(&job);
            drv.complete(&mut DramBus(dram), handle)
        };
        let start = out.len();
        out.resize(start + res.result_bytes as usize, 0);
        dram.read(out_addr, &mut out[start..]);
        (
            u64::from(res.block.tuples_in),
            u64::from(res.tuples_out),
            res.block.cycles,
            res.io.reg_writes,
            res.io.reg_reads,
            u64::from(res.block.bytes_written),
        )
    } else {
        let stats = exec.processor.process_block(data, rules, &exec.ops, out);
        let bytes_written = match exec.profile {
            // The fixed-block baseline always writes whole blocks back.
            DriverProfile::Baseline => u64::from(exec.chunk_bytes),
            DriverProfile::Generated => u64::from(stats.bytes_out),
        };
        let cycles = estimate_block_cycles(
            data.len() as u64,
            u64::from(stats.tuples_in),
            bytes_written,
            exec.stages,
        );
        let (w, r) = match invoke {
            PeInvoke::Keyed => (timing::BATCH_KEY_CFG_WRITES, timing::BATCH_KEY_CFG_READS),
            PeInvoke::Cold => exec.cfg_io(true, rules.len()),
            PeInvoke::Warm => exec.cfg_io(false, rules.len()),
        };
        (u64::from(stats.tuples_in), u64::from(stats.tuples_out), cycles, w, r, bytes_written)
    }
}

/// ARM post-filter over the PE's output tuples in `out[before..]` (the
/// hybrid plan's residual stage). Only lowered when the transformation
/// is the identity, so input-lane offsets are valid on output tuples.
/// Returns the number of tuples dropped.
fn apply_residual(
    exec: &TableExec,
    residual: &[FilterRule],
    out: &mut Vec<u8>,
    before: usize,
) -> u64 {
    let ts = exec.processor.out_tuple_bytes().max(1);
    let mut kept = Vec::with_capacity(out.len() - before);
    let mut dropped = 0u64;
    for tup in out[before..].chunks_exact(ts) {
        if exec.processor.tuple_passes(tup, residual, &exec.ops) {
            kept.extend_from_slice(tup);
        } else {
            dropped += 1;
        }
    }
    out.truncate(before);
    out.extend_from_slice(&kept);
    dropped
}

/// Run one staged scan block on the plan's backend, appending passing
/// (transformed) tuples to `out` and returning the block's completion
/// time. `candidate`/`count_fallback` carry the caller's PE choice
/// (round-robin for the serial path, pinned for a parallel worker);
/// `configured[pe]` tracks whether the PE's rule registers are warm.
#[allow(clippy::too_many_arguments)]
fn scan_block_job(
    platform: &mut CosmosPlatform,
    exec: &mut TableExec,
    plan: &PhysicalPlan,
    all_rules: &[FilterRule],
    data: &[u8],
    staged: SimNs,
    candidate: Option<usize>,
    count_fallback: bool,
    configured: &mut [bool],
    out: &mut Vec<u8>,
    report: &mut SimReport,
) -> NkvResult<SimNs> {
    if plan.backend == Backend::Software {
        let stats = exec.processor.process_block(data, all_rules, &exec.ops, out);
        report.tuples_in += u64::from(stats.tuples_in);
        report.tuples_out += u64::from(stats.tuples_out);
        return Ok(arm_filter(platform, staged, data.len() as u64));
    }
    match claim_pe(platform, exec, candidate, count_fallback)? {
        PeGrant::Hw(d) => {
            let before = out.len();
            let (tin, tout, cycles, w, r, bytes_written) = hw_filter_block(
                exec,
                &mut platform.dram,
                data,
                &plan.pushed,
                d,
                if configured[d] { PeInvoke::Warm } else { PeInvoke::Cold },
                out,
            );
            configured[d] = true;
            report.tuples_in += tin;
            report.tuples_out += tout;
            report.reg_writes += w;
            report.reg_reads += r;
            // ARM configures the PE, then the PE streams the block;
            // load + store both ride the DRAM port.
            let mut done = schedule_hw_job(
                platform,
                exec,
                d,
                staged,
                cycles,
                w,
                r,
                Some(data.len() as u64),
                Some(bytes_written),
            );
            if !plan.residual.is_empty() {
                // Hybrid residual: the ARM re-filters the PE's output
                // stream (it is in DRAM already) before reconciliation.
                let produced = (out.len() - before) as u64;
                done = arm_filter(platform, done, produced);
                report.tuples_out -= apply_residual(exec, &plan.residual, out, before);
            }
            Ok(done)
        }
        PeGrant::Sw { hung } => {
            // Baseline tail block, a just-hung PE, or no healthy PE
            // left: one ARM pass over the *combined* chain (pushed +
            // residual), so the degraded block needs no residual pass.
            let stats = exec.processor.process_block(data, all_rules, &exec.ops, out);
            report.tuples_in += u64::from(stats.tuples_in);
            report.tuples_out += u64::from(stats.tuples_out);
            Ok(arm_filter(platform, sw_resume_at(exec, staged, hung), data.len() as u64))
        }
    }
}

/// Decode the keys of the tuples appended at `results[from..]` into the
/// reconciliation worklist. A result buffer too short for a whole key
/// means a PE wrote garbage — surfaced as a typed error, not a panic.
fn decode_matched_keys(
    exec: &TableExec,
    results: &[u8],
    from: usize,
    rank: usize,
    matched_keys: &mut Vec<(u64, usize, usize)>,
) -> NkvResult<()> {
    let mut off = from;
    while off < results.len() {
        let key = results
            .get(off..off + 8)
            .and_then(|s| <[u8; 8]>::try_from(s).ok())
            .map(u64::from_le_bytes)
            .ok_or(NkvError::ResultDecode { offset: off, need: 8, len: results.len() })?;
        matched_keys.push((key, rank, off));
        off += exec.processor.out_tuple_bytes();
    }
    Ok(())
}

/// The ARM's memtable pass: probe plus a per-byte filter walk.
fn memtable_pass_done(platform: &mut CosmosPlatform, lsm: &LsmTree, start: SimNs) -> SimNs {
    let (_, t) = platform.arm.schedule(
        start,
        timing::ARM_MEMTABLE_PROBE_NS
            + lsm.memtable().len() as u64
                * timing::ARM_FILTER_PS_PER_BYTE
                * lsm.record_bytes() as u64
                / 1000,
    );
    t
}

/// Per-scan statistics of the parallel block phase (see
/// `NkvDb::parallel_scan_stats`).
#[derive(Debug, Clone)]
pub struct ParallelScanStats {
    /// Worker streams the scan fanned out to.
    pub workers: usize,
    /// Blocks processed by each worker.
    pub blocks_per_worker: Vec<u64>,
    /// Per-block job latency (issue → block done), folded over every
    /// worker via [`LatencyHistogram::merge`].
    pub job_latency: LatencyHistogram,
}

/// The parallel block phase: partition blocks into per-worker streams
/// by flash-channel group, expand each worker's strictly-serial chain,
/// then merge per-job outputs back in global (component, block) order.
#[allow(clippy::too_many_arguments)]
fn run_parallel_scan_blocks(
    platform: &mut CosmosPlatform,
    exec: &mut TableExec,
    plan: &PhysicalPlan,
    all_rules: &[FilterRule],
    ssts: &[SstMeta],
    start: SimNs,
    results: &mut Vec<u8>,
    matched_keys: &mut Vec<(u64, usize, usize)>,
    report: &mut SimReport,
) -> NkvResult<SimNs> {
    let n_pes = exec.pe_servers.len().max(1);
    let workers = plan.parallel_pes.min(n_pes).max(1);
    let channels = platform.flash.config().channels;
    // Global (component, block) order: defines both the deterministic
    // result merge and each worker's in-stream issue order.
    let mut jobs: Vec<(usize, usize, usize)> = Vec::new(); // (rank, sst idx, block idx)
    for (si, sst) in ssts.iter().enumerate() {
        for bi in 0..sst.blocks.len() {
            jobs.push((si + 1, si, bi));
        }
    }
    let mut streams: Vec<Vec<usize>> = vec![Vec::new(); workers];
    for (j, &(_, si, bi)) in jobs.iter().enumerate() {
        let ch = ssts[si].blocks[bi].pages.first().map_or(0, |p| p.channel);
        streams[worker_for_channel(ch, channels, workers)].push(j);
    }
    // The worker chains are expanded sequentially in host order but
    // overlap in simulated time, so shared timelines (and the per-PE
    // servers) must accept out-of-order arrivals. A queue run already
    // owns backfill mode; restore only when we turned it on.
    let in_queue_run = platform.queues().is_some();
    platform.set_parallel_dispatch(true);
    for s in &mut exec.pe_servers {
        s.set_backfill(true);
    }
    let res = parallel_scan_streams(
        platform, exec, plan, all_rules, ssts, start, &jobs, &streams, report,
    );
    if !in_queue_run {
        platform.set_parallel_dispatch(false);
        for s in &mut exec.pe_servers {
            s.set_backfill(false);
        }
    }
    let (outs, op_end) = res?;
    for (j, out) in outs.iter().enumerate() {
        let (rank, _, _) = jobs[j];
        let before = results.len();
        results.extend_from_slice(out);
        decode_matched_keys(exec, results, before, rank, matched_keys)?;
    }
    Ok(op_end)
}

/// Expand every worker's serial block chain (the streaming firmware
/// loop: read block, stage, filter, only then issue the next read).
#[allow(clippy::too_many_arguments)]
fn parallel_scan_streams(
    platform: &mut CosmosPlatform,
    exec: &mut TableExec,
    plan: &PhysicalPlan,
    all_rules: &[FilterRule],
    ssts: &[SstMeta],
    start: SimNs,
    jobs: &[(usize, usize, usize)],
    streams: &[Vec<usize>],
    report: &mut SimReport,
) -> NkvResult<(Vec<Vec<u8>>, SimNs)> {
    let n_pes = exec.pe_servers.len().max(1);
    let mut outs: Vec<Vec<u8>> = vec![Vec::new(); jobs.len()];
    let mut configured = vec![false; n_pes];
    let mut blocks_per_worker = vec![0u64; streams.len()];
    let mut job_latency = LatencyHistogram::new();
    let mut op_end = start;
    for (w, stream) in streams.iter().enumerate() {
        let pe = w % n_pes;
        let mut hist = LatencyHistogram::new();
        let mut t_next = start;
        for &j in stream {
            let (_, si, bi) = jobs[j];
            let sst = &ssts[si];
            let issue = t_next;
            let (staged, data) = staged_block_read(platform, exec, sst, bi, issue)?;
            report.blocks += 1;
            report.bytes_scanned += data.len() as u64;
            let partial = (data.len() as u32) < exec.full_block_payload;
            let baseline_tail = exec.profile == DriverProfile::Baseline && partial;
            let down = exec.pe_failed.get(pe).copied().unwrap_or(false);
            let candidate = if baseline_tail || down { None } else { Some(pe) };
            let done = scan_block_job(
                platform,
                exec,
                plan,
                all_rules,
                &data,
                staged,
                candidate,
                !baseline_tail,
                &mut configured,
                &mut outs[j],
                report,
            )?;
            t_next = done;
            op_end = op_end.max(done);
            hist.record(done.saturating_sub(issue));
            blocks_per_worker[w] += 1;
        }
        job_latency.merge(&hist);
    }
    exec.last_parallel_scan =
        Some(ParallelScanStats { workers: streams.len(), blocks_per_worker, job_latency });
    Ok((outs, op_end))
}

/// Execute a lowered filter-scan plan: memtable pass, per-block
/// filtering on the plan's backend (serial or parallel), version
/// reconciliation, NVMe result transfer.
pub(crate) fn run_scan(
    platform: &mut CosmosPlatform,
    lsm: &LsmTree,
    exec: &mut TableExec,
    plan: &PhysicalPlan,
    now: SimNs,
) -> NkvResult<(Vec<u8>, SimReport)> {
    let mut report = SimReport::default();
    let mut results: Vec<u8> = Vec::new();
    let mut matched_keys: Vec<(u64, usize, usize)> = Vec::new(); // (key, rank, result offset)
    let record_bytes = lsm.record_bytes();
    let start = now + platform.firmware.op_overhead_ns();
    let mut op_end = start;
    exec.last_parallel_scan = None;
    // The functional filter is always the whole conjunction; the split
    // into pushed/residual only decides where each predicate runs.
    let all_rules: Vec<FilterRule> =
        plan.pushed.iter().chain(plan.residual.iter()).copied().collect();

    // --- C0: the memtable participates in every scan (ARM-side); its
    // matches go through the same transformation as the PE path.
    for (key, entry) in lsm.memtable().iter() {
        if let Entry::Value(rec) = entry {
            report.tuples_in += 1;
            if exec.processor.tuple_passes(rec, &all_rules, &exec.ops) {
                matched_keys.push((key, 0, results.len()));
                exec.processor.transform_into(rec, &mut results);
                report.tuples_out += 1;
            }
        }
    }
    op_end = op_end.max(memtable_pass_done(platform, lsm, start));

    // --- Persistent components: filter every data block.
    let ssts: Vec<SstMeta> = lsm.all_ssts().into_iter().cloned().collect();
    if plan.backend != Backend::Software && plan.parallel_pes >= 1 {
        let t = run_parallel_scan_blocks(
            platform,
            exec,
            plan,
            &all_rules,
            &ssts,
            start,
            &mut results,
            &mut matched_keys,
            &mut report,
        )?;
        op_end = op_end.max(t);
    } else {
        // Serial legacy dispatch: every flash read issues at `start`
        // (the firmware queues reads across channels); the flash model
        // serializes per resource.
        let mut driver_rr = 0usize;
        let mut configured = vec![false; exec.pe_servers.len().max(1)];
        for (rank, sst) in ssts.iter().enumerate() {
            let rank = rank + 1; // memtable is rank 0
            for bi in 0..sst.blocks.len() {
                let (staged, data) = staged_block_read(platform, exec, sst, bi, start)?;
                report.blocks += 1;
                report.bytes_scanned += data.len() as u64;
                let before = results.len();
                // The fixed-block baseline cannot express partial
                // blocks; its firmware handles the tail block in
                // software (see DESIGN.md).
                let (candidate, count_fallback) = if plan.backend == Backend::Software {
                    (None, false)
                } else {
                    let partial = (data.len() as u32) < exec.full_block_payload;
                    let baseline_tail = exec.profile == DriverProfile::Baseline && partial;
                    let healthy = if baseline_tail {
                        None
                    } else {
                        next_healthy_pe(&exec.pe_failed, exec.pe_servers.len(), &mut driver_rr)
                    };
                    (healthy, !baseline_tail)
                };
                let done = scan_block_job(
                    platform,
                    exec,
                    plan,
                    &all_rules,
                    &data,
                    staged,
                    candidate,
                    count_fallback,
                    &mut configured,
                    &mut results,
                    &mut report,
                )?;
                op_end = op_end.max(done);
                decode_matched_keys(exec, &results, before, rank, &mut matched_keys)?;
            }
        }
    }

    // --- Post-filter reconciliation (shadow check).
    let mut keep = vec![true; matched_keys.len()];
    for (i, &(key, rank, _)) in matched_keys.iter().enumerate() {
        if !exec.reconcile || rank == 0 {
            continue; // memtable is always newest
        }
        if lsm.memtable_get(key).is_some() {
            keep[i] = false;
            continue;
        }
        for newer in lsm.ssts_newer_than(rank - 1) {
            if newer.is_tombstoned(key) {
                keep[i] = false;
                break;
            }
            if newer.may_contain(key) {
                // Bloom hit: confirm with a block read.
                if let Some(bi) = newer.block_for(key) {
                    let (t, data) = confirm_block_read(platform, exec, newer, bi, op_end)?;
                    report.shadow_confirm_reads += 1;
                    op_end = op_end.max(t);
                    if search_block(&data, record_bytes, key)?.is_some() {
                        keep[i] = false;
                        break;
                    }
                }
            }
        }
    }
    let out_bytes = exec.processor.out_tuple_bytes();
    let mut reconciled = Vec::with_capacity(results.len());
    for (i, &(_, _rank, off)) in matched_keys.iter().enumerate() {
        if keep[i] {
            reconciled.extend_from_slice(&results[off..off + out_bytes]);
        }
    }
    report.tuples_out = keep.iter().filter(|&&k| k).count() as u64;

    // --- Host transfer of the result set over NVMe.
    let (nv_start, host_done) = platform.nvme.transfer(op_end, reconciled.len() as u64);
    platform.trace_nvme(nv_start, host_done - nv_start, reconciled.len() as u64);
    op_end = host_done;

    report.result_bytes = reconciled.len() as u64;
    report.sim_ns = op_end - now;
    Ok((reconciled, report))
}

/// Execute a lowered aggregate-scan plan: one register-resident
/// reduction over every matching record; only the 8-byte accumulator
/// crosses the NVMe link.
pub(crate) fn run_scan_aggregate(
    platform: &mut CosmosPlatform,
    lsm: &LsmTree,
    exec: &mut TableExec,
    plan: &PhysicalPlan,
    now: SimNs,
) -> NkvResult<(u64, bool, SimReport)> {
    let PhysOp::AggregateScan { agg, lane } = plan.op else {
        unreachable!("run_scan_aggregate requires an AggregateScan plan");
    };
    let rules: &[FilterRule] = &plan.pushed;
    let mut report = SimReport::default();
    let start = now + platform.firmware.op_overhead_ns();
    let mut op_end = start;
    let mut acc = crate::oracle_acc(&exec.processor, agg, lane)
        .ok_or_else(|| NkvError::InvalidLane { table: "<aggregate>".into(), lane })?;

    // Memtable contribution (ARM-side, like run_scan()).
    for (_, entry) in lsm.memtable().iter() {
        if let Entry::Value(rec) = entry {
            report.tuples_in += 1;
            if exec.processor.tuple_passes(rec, rules, &exec.ops) {
                report.tuples_out += 1;
                if let Some(v) = exec.processor.lane_value(rec, lane) {
                    acc.update(v);
                }
            }
        }
    }
    op_end = op_end.max(memtable_pass_done(platform, lsm, start));

    let ssts: Vec<SstMeta> = lsm.all_ssts().into_iter().cloned().collect();
    let mut driver_rr = 0usize;
    let mut configured = vec![false; exec.pe_servers.len().max(1)];
    for sst in &ssts {
        for bi in 0..sst.blocks.len() {
            let (staged, data) = staged_block_read(platform, exec, sst, bi, start)?;
            report.blocks += 1;
            report.bytes_scanned += data.len() as u64;
            let done = if plan.backend == Backend::Software {
                for tuple in data.chunks_exact(exec.processor.in_tuple_bytes()) {
                    report.tuples_in += 1;
                    if exec.processor.tuple_passes(tuple, rules, &exec.ops) {
                        report.tuples_out += 1;
                        if let Some(v) = exec.processor.lane_value(tuple, lane) {
                            acc.update(v);
                        }
                    }
                }
                arm_filter(platform, staged, data.len() as u64)
            } else {
                // Functional result via the shared accumulator; counts
                // and timing like the filtering path, but with zero
                // result write-back (the aggregate stays in a register).
                let mut tin = 0u64;
                let mut tout = 0u64;
                for tuple in data.chunks_exact(exec.processor.in_tuple_bytes()) {
                    tin += 1;
                    if exec.processor.tuple_passes(tuple, rules, &exec.ops) {
                        tout += 1;
                        if let Some(v) = exec.processor.lane_value(tuple, lane) {
                            acc.update(v);
                        }
                    }
                }
                report.tuples_in += tin;
                report.tuples_out += tout;
                let healthy =
                    next_healthy_pe(&exec.pe_failed, exec.pe_servers.len(), &mut driver_rr);
                match claim_pe(platform, exec, healthy, true)? {
                    PeGrant::Hw(d) => {
                        let (mut w, r) = exec.cfg_io(!configured[d], rules.len());
                        if !configured[d] {
                            w += 2; // AGG_FIELD + AGG_OP
                        }
                        configured[d] = true;
                        // +2 reads: the 64-bit accumulator halves.
                        let r = r + 2;
                        report.reg_writes += w;
                        report.reg_reads += r;
                        let cycles = estimate_block_cycles(data.len() as u64, tin, 0, exec.stages);
                        // Aggregates never store: the result stays in a
                        // register, so the job ends at PE-done.
                        schedule_hw_job(
                            platform,
                            exec,
                            d,
                            staged,
                            cycles,
                            w,
                            r,
                            Some(data.len() as u64),
                            None,
                        )
                    }
                    PeGrant::Sw { hung } => {
                        // Hung or exhausted PEs: the ARM re-reduces the
                        // staged block (the accumulator above is already
                        // correct — only time differs).
                        arm_filter(platform, sw_resume_at(exec, staged, hung), data.len() as u64)
                    }
                }
            };
            op_end = op_end.max(done);
        }
    }

    // Only the accumulator travels to the host.
    let (nv_start, host_done) = platform.nvme.transfer(op_end, 8);
    platform.trace_nvme(nv_start, host_done - nv_start, 8);
    report.result_bytes = 8;
    report.sim_ns = host_done - now;
    Ok((acc.value(), acc.any(), report))
}

/// Execute a lowered point-lookup plan: memtable probe, then the
/// bloom-pruned index walk with one block search per candidate.
pub(crate) fn run_get(
    platform: &mut CosmosPlatform,
    lsm: &LsmTree,
    exec: &mut TableExec,
    plan: &PhysicalPlan,
    now: SimNs,
) -> NkvResult<(Option<Vec<u8>>, SimReport)> {
    let PhysOp::PointLookup { key } = plan.op else {
        unreachable!("run_get requires a PointLookup plan");
    };
    let mut report = SimReport::default();
    let mut t = now + platform.firmware.op_overhead_ns();

    // C0 probe.
    let (_, tt) = platform.arm.schedule(t, timing::ARM_MEMTABLE_PROBE_NS);
    t = tt;
    match lsm.memtable_get(key) {
        Some(Entry::Value(v)) => {
            report.sim_ns = t - now;
            return Ok((Some(v.clone()), report));
        }
        Some(Entry::Tombstone) => {
            report.sim_ns = t - now;
            return Ok((None, report));
        }
        None => {}
    }

    // Persistent components: index walk is sequential (the next lookup
    // target depends on the previous miss).
    let candidates: Vec<SstMeta> = lsm.candidate_ssts(key).into_iter().cloned().collect();
    for sst in &candidates {
        // Index block read + parse on the ARM (same retry policy as data
        // blocks; the page content is already cached in `sst`).
        if let Some(&page) = sst.index_pages.first() {
            let idx_done = index_page_read(platform, exec, sst.id, page, t)?;
            let (_, parsed) = platform.arm.schedule(idx_done, 2_000);
            t = parsed;
        }
        if sst.is_tombstoned(key) {
            report.sim_ns = t - now;
            return Ok((None, report));
        }
        if !sst.may_contain(key) {
            continue;
        }
        let Some(bi) = sst.block_for(key) else { continue };
        let (staged, data) = staged_block_read(platform, exec, sst, bi, t)?;
        report.blocks += 1;
        report.bytes_scanned += data.len() as u64;

        let (found, done) = if plan.backend == Backend::Software {
            let rec = search_block(&data, lsm.record_bytes(), key)?.map(<[u8]>::to_vec);
            let (_, done) = platform.arm.schedule(staged, timing::ARM_BLOCK_SEARCH_NS);
            (rec, done)
        } else {
            // GET always targets PE 0 (one block, no parallelism to
            // exploit); a retired or freshly hung PE 0 degrades the
            // search to the ARM, like the SCAN path.
            let pe_down = exec.pe_failed.first().copied().unwrap_or(false);
            let candidate = if pe_down { None } else { Some(0) };
            match claim_pe(platform, exec, candidate, true)? {
                PeGrant::Sw { hung } => {
                    let rec = search_block(&data, lsm.record_bytes(), key)?.map(<[u8]>::to_vec);
                    let (_, done) = platform
                        .arm
                        .schedule(sw_resume_at(exec, staged, hung), timing::ARM_BLOCK_SEARCH_NS);
                    (rec, done)
                }
                PeGrant::Hw(d) => {
                    // Key-equality filter on the PE; every GET reconfigures
                    // the reference value, so no rule caching applies.
                    let rules = [FilterRule { lane: 0, op_code: eq_code(&exec.ops), value: key }];
                    let mut out = Vec::new();
                    let (tin, tout, cycles, w, r, bytes_written) = hw_filter_block(
                        exec,
                        &mut platform.dram,
                        &data,
                        &rules,
                        d,
                        PeInvoke::Cold,
                        &mut out,
                    );
                    report.tuples_in += tin;
                    report.tuples_out += tout;
                    report.reg_writes += w;
                    report.reg_reads += r;
                    // GET has no PE load phase in the model (the block is
                    // already staged for the search); only the one-record
                    // store rides the DRAM port.
                    let done = schedule_hw_job(
                        platform,
                        exec,
                        d,
                        staged,
                        cycles,
                        w,
                        r,
                        None,
                        Some(bytes_written),
                    );
                    let rec = if out.is_empty() {
                        None
                    } else {
                        let n = lsm.record_bytes();
                        Some(
                            out.get(..n)
                                .ok_or(NkvError::ResultDecode {
                                    offset: 0,
                                    need: n,
                                    len: out.len(),
                                })?
                                .to_vec(),
                        )
                    };
                    (rec, done)
                }
            }
        };
        t = done;
        if let Some(rec) = found {
            let (nv_start, host) = platform.nvme.transfer(t, rec.len() as u64);
            platform.trace_nvme(nv_start, host - nv_start, rec.len() as u64);
            report.sim_ns = host - now;
            return Ok((Some(rec), report));
        }
    }
    report.sim_ns = t - now;
    Ok((None, report))
}

/// Per-batch shared state: the first key of a batch to touch an index
/// page or a data block pays its flash read; later keys reuse the
/// in-DRAM copy (waiting until it is ready when they get there first).
/// This is what makes batching beat N serial GETs on the flash-bound
/// walk — every key of a batch probes the same L0/L1 index pages.
#[derive(Default)]
struct BatchShared {
    /// `sst.id` → time its index page is read + parsed.
    index_parsed: HashMap<u64, SimNs>,
    /// `(sst.id, block)` → (staged-complete time, block bytes).
    blocks: HashMap<(u64, usize), (SimNs, Vec<u8>)>,
}

/// One key's lookup inside a batched GET: [`run_get`]'s walk with three
/// batch twists — index pages and staged blocks are shared through
/// `shared`, the PE is configured cold only by the batch's first
/// hardware block (`batch_configured`; every later key is a
/// [`PeInvoke::Keyed`] strobe), and the per-key NVMe result transfer is
/// left to the caller so results stream back in key order.
#[allow(clippy::too_many_arguments)]
fn batched_key_walk(
    platform: &mut CosmosPlatform,
    lsm: &LsmTree,
    exec: &mut TableExec,
    backend: Backend,
    key: u64,
    start: SimNs,
    shared: &mut BatchShared,
    batch_configured: &mut bool,
    report: &mut SimReport,
) -> NkvResult<(Option<Vec<u8>>, SimNs)> {
    let (_, mut t) = platform.arm.schedule(start, timing::ARM_MEMTABLE_PROBE_NS);
    match lsm.memtable_get(key) {
        Some(Entry::Value(v)) => return Ok((Some(v.clone()), t)),
        Some(Entry::Tombstone) => return Ok((None, t)),
        None => {}
    }
    let candidates: Vec<SstMeta> = lsm.candidate_ssts(key).into_iter().cloned().collect();
    for sst in &candidates {
        if let Some(&page) = sst.index_pages.first() {
            t = match shared.index_parsed.get(&sst.id) {
                // A batch-mate already read + parsed this index page:
                // reuse the in-DRAM parse, waiting for it if needed.
                Some(&parsed) => t.max(parsed),
                None => {
                    let idx_done = index_page_read(platform, exec, sst.id, page, t)?;
                    let (_, parsed) = platform.arm.schedule(idx_done, 2_000);
                    shared.index_parsed.insert(sst.id, parsed);
                    parsed
                }
            };
        }
        if sst.is_tombstoned(key) {
            return Ok((None, t));
        }
        if !sst.may_contain(key) {
            continue;
        }
        let Some(bi) = sst.block_for(key) else { continue };
        let (staged, data) = match shared.blocks.get(&(sst.id, bi)) {
            Some((s, d)) => ((*s).max(t), d.clone()),
            None => {
                let (s, d) = staged_block_read(platform, exec, sst, bi, t)?;
                report.blocks += 1;
                report.bytes_scanned += d.len() as u64;
                shared.blocks.insert((sst.id, bi), (s, d.clone()));
                (s, d)
            }
        };

        let (found, done) = if backend == Backend::Software {
            let rec = search_block(&data, lsm.record_bytes(), key)?.map(<[u8]>::to_vec);
            let (_, done) = platform.arm.schedule(staged, timing::ARM_BLOCK_SEARCH_NS);
            (rec, done)
        } else {
            let pe_down = exec.pe_failed.first().copied().unwrap_or(false);
            let candidate = if pe_down { None } else { Some(0) };
            match claim_pe(platform, exec, candidate, true)? {
                PeGrant::Sw { hung } => {
                    let rec = search_block(&data, lsm.record_bytes(), key)?.map(<[u8]>::to_vec);
                    let (_, done) = platform
                        .arm
                        .schedule(sw_resume_at(exec, staged, hung), timing::ARM_BLOCK_SEARCH_NS);
                    (rec, done)
                }
                PeGrant::Hw(d) => {
                    let invoke = if *batch_configured { PeInvoke::Keyed } else { PeInvoke::Cold };
                    let rules = [FilterRule { lane: 0, op_code: eq_code(&exec.ops), value: key }];
                    let mut out = Vec::new();
                    let (tin, tout, cycles, w, r, bytes_written) = hw_filter_block(
                        exec,
                        &mut platform.dram,
                        &data,
                        &rules,
                        d,
                        invoke,
                        &mut out,
                    );
                    *batch_configured = true;
                    report.tuples_in += tin;
                    report.tuples_out += tout;
                    report.reg_writes += w;
                    report.reg_reads += r;
                    let done = schedule_hw_job(
                        platform,
                        exec,
                        d,
                        staged,
                        cycles,
                        w,
                        r,
                        None,
                        Some(bytes_written),
                    );
                    let rec = if out.is_empty() {
                        None
                    } else {
                        let n = lsm.record_bytes();
                        Some(
                            out.get(..n)
                                .ok_or(NkvError::ResultDecode {
                                    offset: 0,
                                    need: n,
                                    len: out.len(),
                                })?
                                .to_vec(),
                        )
                    };
                    (rec, done)
                }
            }
        };
        t = done;
        if let Some(rec) = found {
            return Ok((Some(rec), t));
        }
    }
    Ok((None, t))
}

/// Execute a lowered batched-GET plan: one key-list descriptor DMA, one
/// PE configuration, N streamed point lookups.
///
/// Per-key outcomes are independently attributed — a fault on one key's
/// walk lands as that slot's typed error while the rest of the batch
/// completes — and per-key completion times are monotone in key order
/// (results stream back in list order, so a key's completion never
/// precedes its predecessor's). The per-key chains expand from a common
/// start and overlap on the shared timelines, exactly like the parallel
/// scan's worker streams.
pub(crate) fn run_batched_get(
    platform: &mut CosmosPlatform,
    lsm: &LsmTree,
    exec: &mut TableExec,
    plan: &PhysicalPlan,
    now: SimNs,
) -> NkvResult<(crate::db::MultiGetResults, Vec<SimNs>, SimReport)> {
    let PhysOp::BatchedGet { keys } = &plan.op else {
        unreachable!("run_batched_get requires a BatchedGet plan");
    };
    let mut report = SimReport::default();
    let t0 = now + platform.firmware.op_overhead_ns();

    // Host DMAs the key-list descriptor; the ARM validates its header.
    let desc = cosmos_sim::KeyListDescriptor::new(keys)
        .map_err(|e| NkvError::Config(format!("batched GET: {e}")))?;
    let (nv_start, dma_done) = platform.nvme.transfer(t0, desc.dma_bytes() as u64);
    platform.trace_nvme(nv_start, dma_done - nv_start, desc.dma_bytes() as u64);
    let (_, t_start) = platform.arm.schedule(dma_done, timing::ARM_BATCH_HEADER_PARSE_NS);

    // Per-key chains overlap on the shared timelines; a queue run
    // already owns backfill mode, so restore only when we turned it on.
    let in_queue_run = platform.queues().is_some();
    platform.set_parallel_dispatch(true);
    for s in &mut exec.pe_servers {
        s.set_backfill(true);
    }

    let mut shared = BatchShared::default();
    let mut batch_configured = false;
    let mut results = Vec::with_capacity(keys.len());
    let mut dones = Vec::with_capacity(keys.len());
    let mut last_done = t_start;
    for &key in keys {
        match batched_key_walk(
            platform,
            lsm,
            exec,
            plan.backend,
            key,
            t_start,
            &mut shared,
            &mut batch_configured,
            &mut report,
        ) {
            Ok((rec, t_key)) => {
                // Results stream back in key order: this key's record
                // rides the NVMe link no earlier than its predecessor's
                // completion.
                let mut host = t_key.max(last_done);
                if let Some(r) = &rec {
                    let (nv_s, h) = platform.nvme.transfer(host, r.len() as u64);
                    platform.trace_nvme(nv_s, h - nv_s, r.len() as u64);
                    report.result_bytes += r.len() as u64;
                    host = h;
                }
                last_done = host;
                results.push(Ok(rec));
                dones.push(host);
            }
            Err(e) => {
                // Typed error attributed to this key's slot; the rest
                // of the batch continues, and the error completion
                // still posts in order.
                results.push(Err(e));
                dones.push(last_done);
            }
        }
    }

    if !in_queue_run {
        platform.set_parallel_dispatch(false);
        for s in &mut exec.pe_servers {
            s.set_backfill(false);
        }
    }
    report.sim_ns = last_done.saturating_sub(now);
    Ok((results, dones, report))
}
