//! The nKV database facade.
//!
//! Ties the platform, the per-table LSM trees and the NDP execution
//! engine together behind the operations the paper evaluates: PUT,
//! DELETE, GET, SCAN (value predicates) and RANGE_SCAN (the 2-stage
//! showcase of the multi-stage filtering extension). Every operation
//! advances the device's simulated clock and returns a [`SimReport`].

use crate::cost::{AdaptState, CostInputs, CostReport};
use crate::engine::ParallelScanStats;
use crate::error::{NkvError, NkvResult};
use crate::exec::{ExecMode, HealthCounters, ResilienceConfig, SimReport, TableExec};
use crate::lsm::{LsmConfig, LsmTree};
use crate::metrics::{fmt_ns, DeviceStats, MetricsRegistry, OpKind};
use crate::placement::PageAllocator;
use crate::plan::{Backend, LogicalOp, PhysOp, PhysicalPlan, PlanOutcome};
use crate::sst::SstBuilder;
use cosmos_sim::faults::{DramFaultStats, FlashFaultStats};
use cosmos_sim::{CosmosConfig, CosmosPlatform, Server, SimNs, TraceEvent};
use ndp_ir::PeConfig;
use ndp_pe::oracle::{BlockProcessor, FilterRule, OpTable};
use ndp_pe::template::PeVariant;
use ndp_pe::{BaselinePe, PeDevice, PeSim};
use ndp_swgen::{DriverProfile, PeDriver};
use std::collections::HashMap;
use std::fmt;

/// Per-key outcomes of a batched GET, in key order: slot *i* answers
/// `keys[i]`, independently attributed (see [`NkvDb::multi_get`] and
/// DESIGN.md §15).
pub type MultiGetResults = Vec<NkvResult<Option<Vec<u8>>>>;

/// Per-table configuration.
#[derive(Clone)]
pub struct TableConfig {
    /// Elaborated PE configuration (defines the record format too).
    pub pe: PeConfig,
    /// Number of PEs attached to this table (the paper uses 1 paper-PE
    /// and 7 ref-PEs).
    pub n_pes: usize,
    /// Generated PEs (this work) or hand-crafted baseline PEs \[1\].
    pub variant: PeVariant,
    /// Drive the tick-level PE model (slow, exact) instead of the
    /// validated fast path.
    pub cycle_accurate: bool,
    /// Whether keys are unique (one record per key). Multi-record
    /// tables (e.g. edge lists keyed by source) set this to false:
    /// bulk loads may then contain duplicate keys, GET returns the
    /// first match, and SCAN skips version reconciliation.
    pub unique_keys: bool,
    /// LSM tuning.
    pub lsm: LsmConfig,
    /// Device-side fault policy (retry budget, PE watchdog, HW→SW
    /// degradation switch).
    pub resilience: ResilienceConfig,
    /// Parallel PE job streams a hardware scan fans out to: the scan's
    /// blocks are partitioned by flash-channel group, one strictly
    /// serial stream per worker, merged deterministically. `0` (the
    /// default) keeps the legacy serial dispatch. Must not exceed
    /// `n_pes`.
    pub parallel_pes: usize,
}

impl TableConfig {
    /// Sensible defaults: one generated PE, fast fidelity.
    pub fn new(pe: PeConfig) -> Self {
        Self {
            pe,
            n_pes: 1,
            variant: PeVariant::Generated,
            cycle_accurate: false,
            unique_keys: true,
            lsm: LsmConfig::default(),
            resilience: ResilienceConfig::default(),
            parallel_pes: 0,
        }
    }
}

pub(crate) struct Table {
    pub(crate) lsm: LsmTree,
    pub(crate) exec: TableExec,
    pub(crate) unique_keys: bool,
    /// Adaptive-planner feedback: per-op-class sighting counters and
    /// observed-latency EWMAs (see [`crate::cost`]).
    pub(crate) adapt: AdaptState,
}

/// Summary of a SCAN (results plus the simulation report).
#[derive(Debug, Clone)]
pub struct ScanSummary {
    /// Matched records, reconciled to newest versions, in component
    /// recency order.
    pub records: Vec<u8>,
    /// Number of matched records.
    pub count: u64,
    pub report: SimReport,
}

/// Device-wide health summary: injected-fault counters from the
/// platform plus the resilience layer's reaction counters, aggregated
/// over every table (see [`HealthCounters`] for the per-table view).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[must_use = "a health snapshot is only useful when inspected"]
pub struct HealthReport {
    /// Flash-level fault counters (transient/correctable/grown-bad/torn).
    pub flash: FlashFaultStats,
    /// DRAM-port stall counters.
    pub dram: DramFaultStats,
    /// PE hangs injected by the platform's fault plan.
    pub pe_hangs_injected: u64,
    /// Reads retried after transient failures.
    pub read_retries: u64,
    /// Simulated time spent in retry backoff.
    pub retry_backoff_ns: SimNs,
    /// Reads abandoned after the retry budget.
    pub reads_failed: u64,
    /// Watchdog timeouts on PE DONE polls.
    pub watchdog_trips: u64,
    /// Blocks degraded to the ARM software oracle.
    pub sw_fallback_blocks: u64,
    /// PEs currently retired by the watchdog.
    pub pes_failed: u64,
    /// Degrading pages relocated by [`NkvDb::read_repair`].
    pub pages_repaired: u64,
}

impl fmt::Display for HealthReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "health: injected {} transient flash, {} ecc-corrected, {} grown-bad, \
             {} torn, {} dram stalls (+{}), {} pe hangs",
            self.flash.transient_failures,
            self.flash.correctable_hits,
            self.flash.grown_bad_pages,
            self.flash.torn_writes,
            self.dram.stalls,
            fmt_ns(self.dram.stall_ns_total),
            self.pe_hangs_injected,
        )?;
        write!(
            f,
            "        reacted {} retries (+{} backoff), {} reads failed, \
             {} watchdog trips, {} sw-fallback blocks, {} PEs retired, {} pages repaired",
            self.read_retries,
            fmt_ns(self.retry_backoff_ns),
            self.reads_failed,
            self.watchdog_trips,
            self.sw_fallback_blocks,
            self.pes_failed,
            self.pages_repaired,
        )
    }
}

/// The device-level database.
pub struct NkvDb {
    pub(crate) platform: CosmosPlatform,
    pub(crate) alloc: PageAllocator,
    pub(crate) tables: HashMap<String, Table>,
    pub(crate) clock: SimNs,
    /// Epoch of the newest persisted manifest (0 = never persisted).
    manifest_epoch: u64,
    /// Pages relocated by read-repair since creation/recovery.
    pages_repaired: u64,
    /// Op-level metrics; `None` (the default) costs one branch per
    /// operation and changes nothing else.
    metrics: Option<MetricsRegistry>,
    /// Spans drained from the platform after each observed operation,
    /// kept for [`NkvDb::take_trace`] (empty while tracing is off).
    trace_log: Vec<TraceEvent>,
}

/// Decode a record's embedded key (its first 8 bytes, little endian),
/// surfacing a typed error instead of panicking when the record is too
/// short to carry one. Callers size-check records first, but the write
/// and bulk-load paths are reachable from the cluster router's shard
/// calls, where a panic would take down the whole fleet simulation
/// instead of failing one shard.
fn record_key(table: &str, record: &[u8]) -> NkvResult<u64> {
    let bytes: [u8; 8] = record.get(..8).and_then(|s| s.try_into().ok()).ok_or_else(|| {
        NkvError::RecordSizeMismatch { table: table.to_string(), expected: 8, got: record.len() }
    })?;
    Ok(u64::from_le_bytes(bytes))
}

impl NkvDb {
    /// Create a database on a platform built from `cfg`.
    pub fn new(cfg: CosmosConfig) -> Self {
        let platform = CosmosPlatform::new(cfg);
        let alloc = PageAllocator::new(platform.flash.config());
        Self {
            platform,
            alloc,
            tables: HashMap::new(),
            clock: 0,
            manifest_epoch: 0,
            pages_repaired: 0,
            metrics: None,
            trace_log: Vec::new(),
        }
    }

    /// Create a database with default platform configuration.
    pub fn default_db() -> Self {
        Self::new(CosmosConfig::default())
    }

    /// Current simulated device time.
    pub fn clock(&self) -> SimNs {
        self.clock
    }

    /// Access the underlying platform (diagnostics, fault injection).
    pub fn platform_mut(&mut self) -> &mut CosmosPlatform {
        &mut self.platform
    }

    /// Turn on op-level metrics (latency histograms + throughput
    /// counters). Breakdowns stay zero unless tracing is also enabled.
    pub fn enable_metrics(&mut self) {
        self.metrics.get_or_insert_with(MetricsRegistry::new);
    }

    /// Turn on the full observability stack: op metrics plus device-wide
    /// event tracing (each ring holds up to `trace_capacity` spans).
    pub fn enable_observability(&mut self, trace_capacity: usize) {
        self.enable_metrics();
        self.platform.enable_tracing(trace_capacity);
    }

    /// Whether op-level metrics are being collected.
    pub fn metrics_enabled(&self) -> bool {
        self.metrics.is_some()
    }

    /// Turn on the device-DRAM block cache with a budget of
    /// `budget_bytes`. Repeated SST block and index-page reads are then
    /// served by a DRAM-port burst instead of flash; writes invalidate
    /// through flush/compaction retirement and read-repair relocation,
    /// so results are byte-identical to the uncached device.
    pub fn enable_cache(&mut self, budget_bytes: usize) {
        self.platform.enable_cache(budget_bytes);
    }

    /// Drop the block cache (contents and statistics).
    pub fn disable_cache(&mut self) {
        self.platform.disable_cache();
    }

    /// Whether the block cache is enabled.
    pub fn cache_enabled(&self) -> bool {
        self.platform.cache_enabled()
    }

    /// Block-cache counters (`None` while the cache is disabled).
    pub fn cache_stats(&self) -> Option<cosmos_sim::CacheStats> {
        self.platform.cache_stats()
    }

    /// Device-wide observability snapshot: per-op metrics (empty while
    /// metrics are disabled) plus the [`HealthReport`].
    #[must_use = "a device-stats snapshot is only useful when inspected"]
    pub fn device_stats(&self) -> DeviceStats {
        DeviceStats {
            metrics: self.metrics.clone().unwrap_or_default(),
            health: self.health_report(),
            cache: self.platform.cache_stats(),
            dropped_spans: self.platform.trace_dropped(),
        }
    }

    /// Take every trace span buffered so far (per-op drained spans plus
    /// anything still in the platform rings), sorted by start time.
    /// Empty while tracing is disabled.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        let mut evs = std::mem::take(&mut self.trace_log);
        evs.extend(self.platform.drain_trace());
        evs.sort_by_key(|e| (e.start, e.dur));
        evs
    }

    /// Fold one finished operation into the metrics registry and move
    /// its trace spans into the session log. One branch when both
    /// metrics and tracing are off.
    pub(crate) fn observe(&mut self, kind: OpKind, latency_ns: SimNs, bytes: u64) {
        if self.metrics.is_none() && !self.platform.tracing_enabled() {
            return;
        }
        let spans = self.platform.drain_trace();
        if let Some(m) = &mut self.metrics {
            m.record(kind, latency_ns, bytes);
            m.attribute(kind, &spans);
        }
        self.trace_log.extend(spans);
    }

    /// Device-wide health summary: injected faults plus the resilience
    /// layer's reactions, aggregated over all tables.
    #[must_use = "a health snapshot is only useful when inspected"]
    pub fn health_report(&self) -> HealthReport {
        let mut r = HealthReport {
            flash: self.platform.flash.fault_stats(),
            dram: self.platform.dram.fault_stats(),
            pe_hangs_injected: self.platform.pe_hangs(),
            pages_repaired: self.pages_repaired,
            ..HealthReport::default()
        };
        for t in self.tables.values() {
            let h = t.exec.health;
            r.read_retries += h.read_retries;
            r.retry_backoff_ns += h.retry_backoff_ns;
            r.reads_failed += h.reads_failed;
            r.watchdog_trips += h.watchdog_trips;
            r.sw_fallback_blocks += h.sw_fallback_blocks;
            r.pes_failed += t.exec.failed_pes() as u64;
        }
        r
    }

    /// Per-table resilience counters.
    pub fn table_health(&self, table: &str) -> NkvResult<HealthCounters> {
        let t = self.tables.get(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        Ok(t.exec.health)
    }

    /// Bring a table's watchdog-retired PEs back into rotation (models a
    /// PL reconfiguration of the hung accelerators).
    pub fn reset_pes(&mut self, table: &str) -> NkvResult<()> {
        let t = self.tables.get_mut(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        t.exec.reset_failed_pes();
        Ok(())
    }

    /// Read-repair: relocate every page whose ECC-correction count
    /// reached `threshold` before it degrades into a grown bad page.
    /// Each page's (still correctable) content is copied to a freshly
    /// allocated page, all SST metadata references are rewired, affected
    /// index blocks are rewritten, and the manifest is re-persisted so
    /// the relocation survives a power cycle. Returns the number of
    /// pages relocated.
    pub fn read_repair(&mut self, threshold: u32) -> NkvResult<u64> {
        let degrading = self.platform.flash.degrading_pages(threshold);
        if degrading.is_empty() {
            return Ok(0);
        }
        let t0 = self.clock;
        let mut moved = 0u64;
        let mut repaired_bytes = 0u64;
        let mut stale_indexes: Vec<(String, u64)> = Vec::new();
        for addr in degrading {
            let referenced = self.tables.values().any(|t| t.lsm.references_page(addr));
            if !referenced {
                // Not table data (e.g. a manifest page rewritten in place
                // on every persist): refreshing the cells is enough.
                self.platform.flash.mark_repaired(addr);
                continue;
            }
            // The page is degrading but still correctable: copy it out.
            let (t_read, data) = match self.platform.flash.read_page(addr, self.clock) {
                Ok((t, d)) => (t, d.to_vec()),
                Err(_) => continue, // already unreadable; repair cannot help
            };
            let new = self.alloc.alloc_block(0, 1).ok_or(NkvError::OutOfSpace)?[0];
            let t_prog = self.platform.flash.program_page(new, &data, t_read)?;
            self.clock = self.clock.max(t_prog);
            for (name, table) in self.tables.iter_mut() {
                for id in table.lsm.relocate_page(addr, new) {
                    stale_indexes.push((name.clone(), id));
                }
            }
            self.platform.flash.mark_repaired(addr);
            self.pages_repaired += 1;
            repaired_bytes += data.len() as u64;
            moved += 1;
        }
        // Data pages moved: the on-flash index blocks listing them are
        // stale. Rewrite them and re-point the manifest.
        if !stale_indexes.is_empty() {
            stale_indexes.sort();
            stale_indexes.dedup();
            for (name, id) in stale_indexes {
                let now = self.clock;
                let t = self
                    .tables
                    .get_mut(&name)
                    .ok_or_else(|| NkvError::UnknownTable(name.clone()))?;
                let done =
                    t.lsm.rewrite_index(&mut self.platform.flash, &mut self.alloc, id, now)?;
                self.clock = self.clock.max(done);
                // Conservative: the relocated SST's cached blocks are
                // dropped even though the copied payload is identical.
                self.platform.cache_evict_sst(id);
            }
            self.persist()?;
        }
        self.observe(OpKind::ReadRepair, self.clock.saturating_sub(t0), repaired_bytes);
        Ok(moved)
    }

    /// Create a table driven by the given PE configuration.
    pub fn create_table(&mut self, name: &str, cfg: TableConfig) -> NkvResult<()> {
        if cfg.parallel_pes > cfg.n_pes.max(1) {
            return Err(NkvError::Config(format!(
                "table `{name}`: parallel_pes = {} exceeds the table's {} PE(s)",
                cfg.parallel_pes,
                cfg.n_pes.max(1)
            )));
        }
        let record_bytes = cfg.pe.input.tuple_bytes() as usize;
        // The key is the first 8 bytes of every record; a narrower tuple
        // would make every key extraction slice out of bounds. Validate
        // once here so the PUT/bulk-load/queue paths can never panic.
        if record_bytes < 8 {
            return Err(NkvError::Config(format!(
                "table `{name}`: records are {record_bytes} bytes but the key \
                 occupies the first 8 — widen the PE input tuple"
            )));
        }
        let processor = BlockProcessor::new(&cfg.pe);
        let ops = OpTable::from_config(&cfg.pe);
        let profile = match cfg.variant {
            PeVariant::Generated => DriverProfile::Generated,
            PeVariant::HandCrafted => DriverProfile::Baseline,
        };
        let mut drivers: Vec<PeDriver<Box<dyn PeDevice>>> = Vec::with_capacity(cfg.n_pes);
        for _ in 0..cfg.n_pes.max(1) {
            let dev: Box<dyn PeDevice> = match cfg.variant {
                PeVariant::Generated => Box::new(PeSim::new(cfg.pe.clone())),
                PeVariant::HandCrafted => Box::new(BaselinePe::new(cfg.pe.clone())?),
            };
            drivers.push(PeDriver::new(dev, profile));
        }
        let n = drivers.len();
        let full_block_payload = (cfg.pe.chunk_bytes / record_bytes as u32) * record_bytes as u32;
        let table = Table {
            unique_keys: cfg.unique_keys,
            adapt: AdaptState::default(),
            lsm: LsmTree::new(
                name,
                record_bytes,
                cfg.lsm.clone(),
                0x6e4b ^ u64::from(cfg.pe.chunk_bytes),
            ),
            exec: TableExec {
                processor,
                ops,
                drivers,
                pe_servers: vec![Server::new(); n],
                profile,
                stages: match cfg.variant {
                    PeVariant::Generated => cfg.pe.stages,
                    PeVariant::HandCrafted => 1,
                },
                cycle_accurate: cfg.cycle_accurate,
                full_block_payload,
                chunk_bytes: cfg.pe.chunk_bytes,
                reconcile: cfg.unique_keys,
                aggregates: cfg.pe.aggregates.clone(),
                resilience: cfg.resilience,
                health: HealthCounters::default(),
                pe_failed: vec![false; n],
                parallel_pes: cfg.parallel_pes,
                last_parallel_scan: None,
            },
        };
        self.tables.insert(name.to_string(), table);
        Ok(())
    }

    /// Insert or update a record (key = first 8 bytes, little endian).
    /// Flushes and compacts as thresholds are crossed.
    pub fn put(&mut self, table: &str, record: Vec<u8>) -> NkvResult<()> {
        let t = self.tables.get_mut(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        let expected = t.lsm.record_bytes();
        if record.len() != expected {
            return Err(NkvError::RecordSizeMismatch {
                table: table.to_string(),
                expected,
                got: record.len(),
            });
        }
        let key = record_key(table, &record)?;
        let t0 = self.clock;
        t.lsm.put(key, record);
        self.maintain(table)?;
        // The memtable insert itself is free in simulated time; a PUT's
        // latency is whatever flush/compaction it triggered.
        self.observe(OpKind::Put, self.clock - t0, expected as u64);
        Ok(())
    }

    /// Delete a key (tombstone).
    pub fn delete(&mut self, table: &str, key: u64) -> NkvResult<()> {
        let t = self.tables.get_mut(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        t.lsm.delete(key);
        self.maintain(table)
    }

    /// Run flush/compaction if thresholds are exceeded.
    fn maintain(&mut self, table: &str) -> NkvResult<()> {
        let done = self.maintain_at(table, self.clock)?;
        self.clock = self.clock.max(done);
        Ok(())
    }

    /// Flush/compact a table as of simulated time `now`, returning when
    /// the maintenance finishes (`now` if nothing was due). The queued
    /// scheduler calls this at each command's fetch time; the serial
    /// path wraps it with the device clock.
    pub(crate) fn maintain_at(&mut self, table: &str, now: SimNs) -> NkvResult<SimNs> {
        let mut end = now;
        let t = self.tables.get_mut(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        if t.lsm.should_flush() {
            let done = t.lsm.flush(&mut self.platform.flash, &mut self.alloc, now)?;
            end = end.max(done);
            self.observe(OpKind::Flush, done.saturating_sub(now), 0);
        }
        let mut level = 0;
        loop {
            let t =
                self.tables.get_mut(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
            if !t.lsm.should_compact(level) {
                break;
            }
            let done = t.lsm.compact(&mut self.platform.flash, &mut self.alloc, level, now)?;
            end = end.max(done);
            self.observe(OpKind::Compaction, done.saturating_sub(now), 0);
            level += 1;
        }
        // Compaction retired its input SSTs: evict their blocks (data
        // and index) from the device cache before any read can see the
        // stale copies. Flushes create fresh ids, so they need nothing.
        let retired = self
            .tables
            .get_mut(table)
            .ok_or_else(|| NkvError::UnknownTable(table.into()))?
            .lsm
            .take_retired();
        for id in retired {
            self.platform.cache_evict_sst(id);
        }
        Ok(end)
    }

    /// Force-flush a table's memtable.
    pub fn flush(&mut self, table: &str) -> NkvResult<()> {
        let now = self.clock;
        let t = self.tables.get_mut(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        let done = t.lsm.flush(&mut self.platform.flash, &mut self.alloc, now)?;
        self.clock = self.clock.max(done);
        self.observe(OpKind::Flush, done.saturating_sub(now), 0);
        Ok(())
    }

    /// Bulk-load sorted records directly into a fresh `C2` SST run
    /// (the standard way to ingest a benchmark dataset; bypasses the
    /// memtable, requires strictly ascending keys).
    pub fn bulk_load<I>(&mut self, table: &str, records: I) -> NkvResult<u64>
    where
        I: IntoIterator<Item = Vec<u8>>,
    {
        let now = self.clock;
        let t = self.tables.get_mut(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        let record_bytes = t.lsm.record_bytes();
        let block_bytes = t.lsm.block_bytes();
        let max_per_sst = (block_bytes / record_bytes).max(1) * 2048;
        let mut loaded = 0u64;
        let mut done = now;
        let mut builder: Option<SstBuilder> = None;
        let mut in_current = 0usize;
        let mut next_id = 1_000_000u64;
        for record in records {
            if record.len() != record_bytes {
                return Err(NkvError::RecordSizeMismatch {
                    table: table.to_string(),
                    expected: record_bytes,
                    got: record.len(),
                });
            }
            let key = record_key(table, &record)?;
            let allow_dups = !t.unique_keys;
            let b = builder.get_or_insert_with(|| {
                next_id += 1;
                let b = SstBuilder::new(next_id, 2, record_bytes, block_bytes, table);
                if allow_dups {
                    b.allow_duplicate_keys()
                } else {
                    b
                }
            });
            b.add_record(key, &record)?;
            loaded += 1;
            in_current += 1;
            if in_current >= max_per_sst {
                let (meta, t_done) = builder
                    .take()
                    .ok_or_else(|| {
                        NkvError::Config(format!(
                            "bulk load into `{table}` lost its SST builder mid-stream"
                        ))
                    })?
                    .finish(&mut self.platform.flash, &mut self.alloc, now)?;
                done = done.max(t_done);
                t.lsm.install_bulk_sst(meta);
                in_current = 0;
            }
        }
        if let Some(b) = builder {
            let (meta, t_done) = b.finish(&mut self.platform.flash, &mut self.alloc, now)?;
            done = done.max(t_done);
            t.lsm.install_bulk_sst(meta);
        }
        self.clock = self.clock.max(done);
        Ok(loaded)
    }

    /// Point lookup.
    pub fn get(
        &mut self,
        table: &str,
        key: u64,
        mode: ExecMode,
    ) -> NkvResult<(Option<Vec<u8>>, SimReport)> {
        let now = self.clock;
        let (rec, report) = self.get_at(table, key, mode, now)?;
        self.clock += report.sim_ns;
        self.observe(OpKind::Get, report.sim_ns, rec.as_ref().map_or(0, |r| r.len() as u64));
        Ok((rec, report))
    }

    /// Point lookup as of simulated time `now` (no clock/metrics side
    /// effects; shared by the serial path and the queued scheduler).
    pub(crate) fn get_at(
        &mut self,
        table: &str,
        key: u64,
        mode: ExecMode,
        now: SimNs,
    ) -> NkvResult<(Option<Vec<u8>>, SimReport)> {
        let t = self.tables.get_mut(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        let plan = PhysicalPlan::lower(
            &LogicalOp::Get { key },
            Backend::from(mode),
            &t.exec.caps(),
            table,
        )?;
        crate::engine::run_get(&mut self.platform, &t.lsm, &mut t.exec, &plan, now)
    }

    /// Batched point lookup: N keys served through one key-list DMA
    /// descriptor and one PE configuration (see `cosmos_sim::batch` and
    /// DESIGN.md §15). Returns per-key outcomes in key order — each
    /// slot independently attributed, so a fault on one key's walk is
    /// that slot's typed error while the rest of the batch completes —
    /// plus the whole batch's [`SimReport`]. A batch of one lowers to
    /// the legacy point lookup, bit for bit.
    pub fn multi_get(
        &mut self,
        table: &str,
        keys: &[u64],
        mode: ExecMode,
    ) -> NkvResult<(MultiGetResults, SimReport)> {
        let now = self.clock;
        let (results, _, report) = self.multi_get_at(table, keys, mode, now)?;
        self.clock += report.sim_ns;
        self.observe(OpKind::Get, report.sim_ns, report.result_bytes);
        Ok((results, report))
    }

    /// Batched lookup as of simulated time `now` (no clock/metrics side
    /// effects; shared by the serial path and the queued scheduler).
    /// Also returns each key's absolute completion time, monotone in
    /// key order — the queue engine turns those into per-command CQEs.
    pub(crate) fn multi_get_at(
        &mut self,
        table: &str,
        keys: &[u64],
        mode: ExecMode,
        now: SimNs,
    ) -> NkvResult<(MultiGetResults, Vec<SimNs>, SimReport)> {
        let t = self.tables.get_mut(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        let plan = PhysicalPlan::lower(
            &LogicalOp::MultiGet { keys: keys.to_vec() },
            Backend::from(mode),
            &t.exec.caps(),
            table,
        )?;
        match plan.op {
            // Singleton batches fold to the legacy point lookup.
            PhysOp::PointLookup { .. } => {
                let (rec, report) =
                    crate::engine::run_get(&mut self.platform, &t.lsm, &mut t.exec, &plan, now)?;
                let done = now + report.sim_ns;
                Ok((vec![Ok(rec)], vec![done], report))
            }
            _ => {
                crate::engine::run_batched_get(&mut self.platform, &t.lsm, &mut t.exec, &plan, now)
            }
        }
    }

    /// Full SCAN with a chain of value predicates.
    pub fn scan(
        &mut self,
        table: &str,
        rules: &[FilterRule],
        mode: ExecMode,
    ) -> NkvResult<ScanSummary> {
        let now = self.clock;
        let summary = self.scan_at(table, rules, mode, now)?;
        self.clock += summary.report.sim_ns;
        self.observe(OpKind::Scan, summary.report.sim_ns, summary.report.result_bytes);
        Ok(summary)
    }

    /// SCAN as of simulated time `now` (no clock/metrics side effects;
    /// shared by the serial path and the queued scheduler). Lowers the
    /// rules through the planner, so validation errors are identical on
    /// every path.
    pub(crate) fn scan_at(
        &mut self,
        table: &str,
        rules: &[FilterRule],
        mode: ExecMode,
        now: SimNs,
    ) -> NkvResult<ScanSummary> {
        let t = self.tables.get_mut(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        let op = LogicalOp::Scan { rules: rules.to_vec() };
        let plan = PhysicalPlan::lower(&op, Backend::from(mode), &t.exec.caps(), table)?;
        let (records, report) =
            crate::engine::run_scan(&mut self.platform, &t.lsm, &mut t.exec, &plan, now)?;
        let count = records.len() as u64 / t.exec.processor.out_tuple_bytes().max(1) as u64;
        Ok(ScanSummary { records, count, report })
    }

    /// Aggregate SCAN pushdown: compute `agg` over `lane` of every record
    /// matching `rules`; only the 64-bit result leaves the device.
    /// Returns `(value, any_rows, report)`. In hardware mode the table's
    /// PEs must have been generated with `aggregate = {...}`.
    pub fn scan_aggregate(
        &mut self,
        table: &str,
        rules: &[FilterRule],
        agg: ndp_ir::AggOp,
        lane: u32,
        mode: ExecMode,
    ) -> NkvResult<(u64, bool, SimReport)> {
        let now = self.clock;
        let t = self.tables.get_mut(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        let op = LogicalOp::ScanAggregate { rules: rules.to_vec(), agg, lane };
        let plan = PhysicalPlan::lower(&op, Backend::from(mode), &t.exec.caps(), table)?;
        let out =
            crate::engine::run_scan_aggregate(&mut self.platform, &t.lsm, &mut t.exec, &plan, now)?;
        self.clock += out.2.sim_ns;
        self.observe(OpKind::Scan, out.2.sim_ns, out.2.result_bytes);
        Ok(out)
    }

    /// Lower a logical operation against a table into its physical plan
    /// (without executing it).
    pub fn plan(&self, table: &str, op: &LogicalOp, backend: Backend) -> NkvResult<PhysicalPlan> {
        let t = self.tables.get(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        PhysicalPlan::lower(op, backend, &t.exec.caps(), table)
    }

    /// `EXPLAIN`: render the physical plan a logical operation lowers to,
    /// using the table's operator symbols.
    pub fn explain(&self, table: &str, op: &LogicalOp, backend: Backend) -> NkvResult<String> {
        let t = self.tables.get(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        let plan = PhysicalPlan::lower(op, backend, &t.exec.caps(), table)?;
        let mut text = plan.explain(table, &t.exec.ops);
        // The cache line appears only when the cache is on, keeping the
        // default rendering byte-identical to the pre-cache device.
        if let Some(c) = self.platform.cache() {
            text.push_str(&format!(
                "  cache=device-DRAM segmented-LRU, budget {} KiB\n",
                c.budget_bytes() / 1024
            ));
        }
        Ok(text)
    }

    /// Plan and execute a logical operation on the chosen backend,
    /// advancing the device clock. This is the planner-first face of
    /// [`get`](Self::get)/[`scan`](Self::scan)/
    /// [`scan_aggregate`](Self::scan_aggregate) and the only entry point
    /// for the [`Backend::Hybrid`] pushdown split.
    pub fn execute(
        &mut self,
        table: &str,
        op: &LogicalOp,
        backend: Backend,
    ) -> NkvResult<PlanOutcome> {
        let now = self.clock;
        let t = self.tables.get_mut(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        let plan = PhysicalPlan::lower(op, backend, &t.exec.caps(), table)?;
        match plan.op {
            PhysOp::PointLookup { .. } => {
                let (record, report) =
                    crate::engine::run_get(&mut self.platform, &t.lsm, &mut t.exec, &plan, now)?;
                self.clock += report.sim_ns;
                self.observe(
                    OpKind::Get,
                    report.sim_ns,
                    record.as_ref().map_or(0, |r| r.len() as u64),
                );
                Ok(PlanOutcome::Point { record, report })
            }
            PhysOp::BatchedGet { .. } => {
                let (results, _, report) = crate::engine::run_batched_get(
                    &mut self.platform,
                    &t.lsm,
                    &mut t.exec,
                    &plan,
                    now,
                )?;
                self.clock += report.sim_ns;
                self.observe(OpKind::Get, report.sim_ns, report.result_bytes);
                Ok(PlanOutcome::Batch { results, report })
            }
            PhysOp::FilterScan => {
                let (records, report) =
                    crate::engine::run_scan(&mut self.platform, &t.lsm, &mut t.exec, &plan, now)?;
                let count = records.len() as u64 / t.exec.processor.out_tuple_bytes().max(1) as u64;
                self.clock += report.sim_ns;
                self.observe(OpKind::Scan, report.sim_ns, report.result_bytes);
                Ok(PlanOutcome::Records { records, count, report })
            }
            PhysOp::AggregateScan { .. } => {
                let (value, any, report) = crate::engine::run_scan_aggregate(
                    &mut self.platform,
                    &t.lsm,
                    &mut t.exec,
                    &plan,
                    now,
                )?;
                self.clock += report.sim_ns;
                self.observe(OpKind::Scan, report.sim_ns, report.result_bytes);
                Ok(PlanOutcome::Aggregate { value, any, report })
            }
        }
    }

    /// Capture the table-shape inputs the adaptive cost model prices
    /// against: flash-resident blocks/bytes, memtable occupancy and the
    /// current DRAM-cache hit rate (0.0 while the cache is off).
    fn cost_inputs(&self, table: &str, op: &LogicalOp) -> NkvResult<CostInputs> {
        let t = self.tables.get(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        let mut blocks = 0u64;
        let mut bytes = 0u64;
        for sst in t.lsm.all_ssts() {
            blocks += sst.blocks.len() as u64;
            bytes += sst.blocks.iter().map(|b| u64::from(b.bytes)).sum::<u64>();
        }
        let batch_keys = match op {
            LogicalOp::MultiGet { keys } => keys.len() as u64,
            _ => 1,
        };
        Ok(CostInputs {
            flash_blocks: blocks,
            flash_bytes: bytes,
            memtable_records: t.lsm.memtable().len() as u64,
            record_bytes: t.lsm.record_bytes() as u64,
            cache_hit_rate: self.platform.cache_stats().map_or(0.0, |s| s.hit_rate()),
            batch_keys,
        })
    }

    /// Cost-based tier selection: price `op` on every tier that lowers
    /// (Software → Hardware → Hybrid, strict-min cost, ties to the
    /// earlier candidate) using the table's shape, the DRAM-cache hit
    /// rate and the table's adaptive feedback state. Pure — executing
    /// nothing, recording nothing — so `EXPLAIN` and tests can consult
    /// it freely. Results are tier-invariant by construction, so the
    /// choice only ever changes simulated time, never bytes.
    pub fn choose_backend(&self, table: &str, op: &LogicalOp) -> NkvResult<(Backend, CostReport)> {
        let t = self.tables.get(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        let caps = t.exec.caps();
        let inputs = self.cost_inputs(table, op)?;
        let report = crate::cost::choose(&t.adapt, op, inputs, |b| {
            PhysicalPlan::lower(op, b, &caps, table).is_ok()
        });
        if report.tiers.iter().all(|tc| tc.cost_ns.is_none()) {
            // Nothing lowers: surface the software tier's lowering error
            // (tier-independent validation, e.g. an unknown lane).
            PhysicalPlan::lower(op, Backend::Software, &caps, table)?;
        }
        Ok((report.chosen, report))
    }

    /// Plan and execute `op` on whichever tier
    /// [`choose_backend`](Self::choose_backend) picks, then feed the
    /// observed latency back into the table's adaptive state so repeated
    /// shapes are re-costed (SW→HW promotion for hot flash-heavy scans).
    pub fn execute_adaptive(
        &mut self,
        table: &str,
        op: &LogicalOp,
    ) -> NkvResult<(PlanOutcome, CostReport)> {
        let (backend, report) = self.choose_backend(table, op)?;
        let outcome = self.execute(table, op, backend)?;
        let observed = outcome.report().sim_ns;
        let t = self.tables.get_mut(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        t.adapt.record(report.class, backend, observed);
        Ok((outcome, report))
    }

    /// Adaptive SCAN: [`scan`](Self::scan) with the tier chosen by the
    /// cost model. Returns the summary plus the decision record.
    pub fn scan_adaptive(
        &mut self,
        table: &str,
        rules: &[FilterRule],
    ) -> NkvResult<(ScanSummary, CostReport)> {
        let op = LogicalOp::Scan { rules: rules.to_vec() };
        match self.execute_adaptive(table, &op)? {
            (PlanOutcome::Records { records, count, report }, cost) => {
                Ok((ScanSummary { records, count, report }, cost))
            }
            _ => Err(NkvError::Config(format!(
                "adaptive scan of `{table}` lowered to a non-scan outcome"
            ))),
        }
    }

    /// Adaptive point lookup: [`get`](Self::get) with the tier chosen by
    /// the cost model. The walk dominates either tier (Fig. 7(a): the
    /// config tax eats the PE's advantage), so the pick follows the
    /// record width — narrow records stream too slowly through the PE to
    /// beat the ARM's fixed binary search.
    pub fn get_adaptive(
        &mut self,
        table: &str,
        key: u64,
    ) -> NkvResult<(Option<Vec<u8>>, SimReport, CostReport)> {
        match self.execute_adaptive(table, &LogicalOp::Get { key })? {
            (PlanOutcome::Point { record, report }, cost) => Ok((record, report, cost)),
            _ => Err(NkvError::Config(format!(
                "adaptive get on `{table}` lowered to a non-point outcome"
            ))),
        }
    }

    /// `EXPLAIN` for the adaptive planner: the chosen tier's plan plus
    /// the per-tier cost estimates and the promotion state that drove
    /// the decision.
    pub fn explain_adaptive(&self, table: &str, op: &LogicalOp) -> NkvResult<String> {
        let (backend, report) = self.choose_backend(table, op)?;
        let mut text = self.explain(table, op, backend)?;
        text.push_str(&report.render());
        Ok(text)
    }

    /// Change how many parallel PE job streams a table's hardware scans
    /// fan out to (0 = legacy serial dispatch). Bounded by the table's
    /// PE count, like [`TableConfig::parallel_pes`] at creation.
    pub fn set_parallel_pes(&mut self, table: &str, n: usize) -> NkvResult<()> {
        let t = self.tables.get_mut(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        let pes = t.exec.pe_servers.len().max(1);
        if n > pes {
            return Err(NkvError::Config(format!(
                "table `{table}`: parallel_pes = {n} exceeds the table's {pes} PE(s)"
            )));
        }
        t.exec.parallel_pes = n;
        Ok(())
    }

    /// Statistics of the table's most recent parallel scan phase
    /// (`None` if the last scan ran the serial dispatch).
    pub fn parallel_scan_stats(&self, table: &str) -> NkvResult<Option<ParallelScanStats>> {
        let t = self.tables.get(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        Ok(t.exec.last_parallel_scan.clone())
    }

    /// RANGE_SCAN on the key: `lo <= key < hi`, expressed as a 2-stage
    /// predicate chain (the paper: "especially the 2-staged ones are
    /// interesting, since they could be used to implement RANGE_SCANs").
    pub fn range_scan(
        &mut self,
        table: &str,
        lo: u64,
        hi: u64,
        mode: ExecMode,
    ) -> NkvResult<ScanSummary> {
        let rules = [
            FilterRule { lane: 0, op_code: 4 /* ge */, value: lo },
            FilterRule { lane: 0, op_code: 5 /* lt */, value: hi },
        ];
        self.scan(table, &rules, mode)
    }

    /// Persist the device manifest so [`NkvDb::recover`] can rebuild the
    /// store after a power cycle. Unflushed memtable contents are
    /// volatile by design — flush first if they must survive.
    ///
    /// Persistence is power-cut-atomic: manifests carry a monotonically
    /// increasing epoch and alternate between two flash slots, and the
    /// previous epoch's slot is untouched while the new one is written —
    /// a cut mid-persist leaves the old manifest valid (recovery picks
    /// the newest slot whose CRC verifies).
    pub fn persist(&mut self) -> NkvResult<()> {
        let manifest = crate::recovery::Manifest {
            epoch: self.manifest_epoch + 1,
            tables: self
                .tables
                .iter()
                .map(|(name, t)| {
                    crate::recovery::manifest_entry(
                        name,
                        t.lsm.record_bytes(),
                        t.unique_keys,
                        t.lsm.levels(),
                    )
                })
                .collect(),
        };
        let done =
            crate::recovery::write_manifest(&mut self.platform.flash, &manifest, self.clock)?;
        self.manifest_epoch = manifest.epoch;
        self.clock = self.clock.max(done);
        Ok(())
    }

    /// Rebuild a database from a flash image (after a simulated power
    /// cycle): reads the manifest, re-parses every SST index block and
    /// reconstructs trees, blooms, tombstones and allocator watermarks.
    /// `table_configs` re-supplies the PE configurations (formats live in
    /// the data catalog / specification, not in flash).
    pub fn recover(
        platform: CosmosPlatform,
        table_configs: Vec<(String, TableConfig)>,
    ) -> NkvResult<Self> {
        let mut db = Self {
            alloc: PageAllocator::new(platform.flash.config()),
            platform,
            tables: HashMap::new(),
            clock: 0,
            manifest_epoch: 0,
            pages_repaired: 0,
            metrics: None,
            trace_log: Vec::new(),
        };
        let (manifest, t_manifest) = crate::recovery::read_manifest(&mut db.platform.flash, 0)?;
        db.clock = t_manifest;
        db.manifest_epoch = manifest.epoch;
        for entry in &manifest.tables {
            let (_, cfg) =
                table_configs.iter().find(|(n, _)| n == &entry.name).ok_or_else(|| {
                    NkvError::Config(format!(
                        "no table configuration supplied for recovered table `{}`",
                        entry.name
                    ))
                })?;
            if cfg.pe.input.tuple_bytes() != u64::from(entry.record_bytes) {
                return Err(NkvError::Config(format!(
                    "table `{}`: manifest records are {} bytes but the supplied                      format is {} bytes",
                    entry.name,
                    entry.record_bytes,
                    cfg.pe.input.tuple_bytes()
                )));
            }
            db.create_table(&entry.name, cfg.clone())?;
            let (recovered, t) =
                crate::recovery::recover_table_ssts(&mut db.platform.flash, entry, db.clock)?;
            db.clock = db.clock.max(t);
            for (_, meta) in &recovered {
                for block in &meta.blocks {
                    for &p in &block.pages {
                        db.alloc.mark_used(p);
                    }
                }
                for &p in &meta.index_pages {
                    db.alloc.mark_used(p);
                }
            }
            let t = db.tables.get_mut(&entry.name).ok_or_else(|| {
                NkvError::Config(format!(
                    "recovered table `{}` vanished after create_table",
                    entry.name
                ))
            })?;
            t.lsm = crate::lsm::LsmTree::from_recovered(
                &entry.name,
                entry.record_bytes as usize,
                cfg.lsm.clone(),
                0x6e4b ^ u64::from(cfg.pe.chunk_bytes),
                recovered,
            );
        }
        Ok(db)
    }

    /// Level occupancy of a table (diagnostics).
    pub fn level_sizes(&self, table: &str) -> NkvResult<Vec<usize>> {
        let t = self.tables.get(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        Ok(t.lsm.level_sizes())
    }

    /// Total persistent records of a table (including shadowed versions).
    pub fn persistent_records(&self, table: &str) -> NkvResult<u64> {
        let t = self.tables.get(table).ok_or_else(|| NkvError::UnknownTable(table.into()))?;
        Ok(t.lsm.persistent_records())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ndp_ir::elaborate;
    use ndp_spec::parse;
    use ndp_workload::spec::{paper_lanes, PAPER_PE, PAPER_REF_SPEC};
    use ndp_workload::{Paper, PaperGen, PubGraphConfig};

    fn paper_db(n_pes: usize, variant: PeVariant) -> NkvDb {
        let m = parse(PAPER_REF_SPEC).unwrap();
        let pe = elaborate(&m, PAPER_PE).unwrap();
        let mut db = NkvDb::default_db();
        let mut cfg = TableConfig::new(pe);
        cfg.n_pes = n_pes;
        cfg.variant = variant;
        db.create_table("papers", cfg).unwrap();
        db
    }

    fn encode(p: &Paper) -> Vec<u8> {
        let mut v = Vec::with_capacity(80);
        p.encode_into(&mut v);
        v
    }

    #[test]
    fn put_get_delete_lifecycle() {
        let mut db = paper_db(1, PeVariant::Generated);
        let cfg = PubGraphConfig { papers: 10, refs: 10, seed: 1 };
        let p = PaperGen::paper_at(&cfg, 3);
        db.put("papers", encode(&p)).unwrap();
        let (got, rep) = db.get("papers", p.id, ExecMode::Software).unwrap();
        assert_eq!(got, Some(encode(&p)));
        assert!(rep.sim_ns > 0);
        db.delete("papers", p.id).unwrap();
        let (gone, _) = db.get("papers", p.id, ExecMode::Software).unwrap();
        assert_eq!(gone, None);
        assert!(db.clock() > 0);
    }

    #[test]
    fn bulk_load_then_get_both_modes() {
        let mut db = paper_db(1, PeVariant::Generated);
        let cfg = PubGraphConfig { papers: 3000, refs: 3000, seed: 9 };
        let n = db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
        assert_eq!(n, 3000);
        let p = PaperGen::paper_at(&cfg, 1234);
        let (sw, _) = db.get("papers", p.id, ExecMode::Software).unwrap();
        let (hw, _) = db.get("papers", p.id, ExecMode::Hardware).unwrap();
        assert_eq!(sw, Some(encode(&p)));
        assert_eq!(sw, hw);
    }

    #[test]
    fn scan_filters_by_year_in_both_modes() {
        let mut db = paper_db(2, PeVariant::Generated);
        let cfg = PubGraphConfig { papers: 5000, refs: 5000, seed: 5 };
        db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
        let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 2015 }];
        let sw = db.scan("papers", &rules, ExecMode::Software).unwrap();
        let hw = db.scan("papers", &rules, ExecMode::Hardware).unwrap();
        assert_eq!(sw.records, hw.records);
        assert!(sw.count > 0);
        // Oracle cross-check against the generator.
        let expected = PaperGen::new(cfg).filter(|p| p.year >= 2015).count() as u64;
        assert_eq!(sw.count, expected);
    }

    #[test]
    fn scan_sees_unflushed_and_updated_records() {
        let mut db = paper_db(1, PeVariant::Generated);
        let cfg = PubGraphConfig { papers: 100, refs: 100, seed: 2 };
        db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
        // Update one paper's year in place (newer version shadows).
        let mut p = PaperGen::paper_at(&cfg, 50);
        p.year = 1900;
        db.put("papers", encode(&p)).unwrap();
        let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 5 /* lt */, value: 1950 }];
        let s = db.scan("papers", &rules, ExecMode::Software).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(Paper::decode(&s.records).year, 1900);
        assert_eq!(Paper::decode(&s.records).id, p.id);
    }

    #[test]
    fn range_scan_uses_two_stages() {
        let m = parse(PAPER_REF_SPEC).unwrap();
        let mut pe = elaborate(&m, PAPER_PE).unwrap();
        pe.stages = 2; // the RANGE_SCAN configuration
        let mut db = NkvDb::default_db();
        db.create_table("papers", TableConfig::new(pe)).unwrap();
        let cfg = PubGraphConfig { papers: 2000, refs: 2000, seed: 3 };
        db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
        let s = db.range_scan("papers", 100, 200, ExecMode::Hardware).unwrap();
        assert_eq!(s.count, 100);
        for rec in s.records.chunks_exact(80) {
            let p = Paper::decode(rec);
            assert!((100..200).contains(&p.id));
        }
    }

    #[test]
    fn range_scan_needs_enough_stages_in_hardware() {
        // A single-stage PE cannot run a 2-rule chain in hardware...
        let mut db = paper_db(1, PeVariant::Generated);
        let cfg = PubGraphConfig { papers: 100, refs: 100, seed: 3 };
        db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
        assert!(matches!(
            db.range_scan("papers", 10, 20, ExecMode::Hardware),
            Err(NkvError::Config(_))
        ));
        // ... but software NDP has no stage limit.
        let s = db.range_scan("papers", 10, 20, ExecMode::Software).unwrap();
        assert_eq!(s.count, 10);
    }

    #[test]
    fn baseline_variant_produces_identical_scan_results() {
        let mut ours = paper_db(1, PeVariant::Generated);
        let mut base = paper_db(1, PeVariant::HandCrafted);
        let cfg = PubGraphConfig { papers: 3000, refs: 3000, seed: 7 };
        for db in [&mut ours, &mut base] {
            db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
        }
        let rules = [FilterRule { lane: paper_lanes::VENUE, op_code: 5, value: 100 }];
        let a = ours.scan("papers", &rules, ExecMode::Hardware).unwrap();
        let b = base.scan("papers", &rules, ExecMode::Hardware).unwrap();
        assert_eq!(a.records, b.records);
        assert!(a.count > 0);
    }

    #[test]
    fn unknown_table_and_bad_record_are_errors() {
        let mut db = paper_db(1, PeVariant::Generated);
        assert!(matches!(db.get("nope", 1, ExecMode::Software), Err(NkvError::UnknownTable(_))));
        assert!(matches!(
            db.put("papers", vec![0u8; 10]),
            Err(NkvError::RecordSizeMismatch { expected: 80, got: 10, .. })
        ));
    }

    #[test]
    fn narrow_record_table_is_rejected_at_creation() {
        // Regression: a tuple narrower than the 8-byte key used to slip
        // through table creation and panic the first key extraction
        // (`record[..8]`) on the PUT and queued-PUT paths. It must be a
        // typed configuration error instead.
        let spec = "
/* @autogen define parser TinyPe with
   chunksize = 32, input = Tiny, output = Tiny */
typedef struct {
    uint32_t tag;
} Tiny;
";
        let m = parse(spec).unwrap();
        let pe = elaborate(&m, "TinyPe").unwrap();
        assert_eq!(pe.input.tuple_bytes(), 4);
        let mut db = NkvDb::default_db();
        match db.create_table("tiny", TableConfig::new(pe)) {
            Err(NkvError::Config(msg)) => {
                assert!(msg.contains("8"), "message names the key width: {msg}")
            }
            other => panic!("expected a Config error, got {other:?}"),
        }
        assert!(db.tables.is_empty(), "rejected table must not be installed");
    }

    #[test]
    fn cache_keeps_results_identical_and_counts_hits() {
        let cfg = PubGraphConfig { papers: 1500, refs: 1500, seed: 21 };
        let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 2010 }];
        let run = |cache: bool| {
            let mut db = paper_db(2, PeVariant::Generated);
            if cache {
                db.enable_cache(8 << 20);
            }
            db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
            let cold = db.scan("papers", &rules, ExecMode::Hardware).unwrap();
            let warm = db.scan("papers", &rules, ExecMode::Hardware).unwrap();
            assert_eq!(cold.records, warm.records);
            (cold.records, warm.report.sim_ns, db.cache_stats())
        };
        let (plain, t_plain, no_stats) = run(false);
        let (cached, t_cached, stats) = run(true);
        assert_eq!(plain, cached, "cached results must be byte-identical");
        assert_eq!(no_stats, None);
        let s = stats.expect("cache enabled");
        assert_eq!(s.hits + s.misses, s.lookups, "counter conservation");
        assert!(s.hits > 0, "second scan must hit: {s:?}");
        assert!(
            t_cached < t_plain,
            "warm scan from DRAM ({t_cached} ns) must beat flash ({t_plain} ns)"
        );
    }

    #[test]
    fn compaction_evicts_retired_ssts_from_the_cache() {
        let m = parse(PAPER_REF_SPEC).unwrap();
        let pe = elaborate(&m, PAPER_PE).unwrap();
        let mut db = NkvDb::default_db();
        db.enable_cache(8 << 20);
        let mut cfg = TableConfig::new(pe);
        cfg.lsm.memtable_bytes = 8 * 1024; // tiny, to force flush/compaction
        cfg.lsm.c1_sst_limit = 2;
        db.create_table("papers", cfg).unwrap();
        let gen_cfg = PubGraphConfig { papers: 1200, refs: 1200, seed: 17 };
        let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 1900 }];
        let mut model = std::collections::BTreeMap::new();
        for (i, p) in PaperGen::new(gen_cfg).enumerate() {
            db.put("papers", encode(&p)).unwrap();
            model.insert(p.id, encode(&p));
            if i % 300 == 299 {
                // Scans interleaved with the PUT churn populate the
                // cache while compactions retire SSTs under it.
                let s = db.scan("papers", &rules, ExecMode::Software).unwrap();
                assert_eq!(s.count as usize, model.len(), "cache must never serve stale blocks");
            }
        }
        let s = db.cache_stats().expect("cache enabled");
        assert!(s.invalidations > 0, "compaction churn must invalidate: {s:?}");
    }

    #[test]
    fn invalid_lane_is_rejected() {
        let mut db = paper_db(1, PeVariant::Generated);
        let rules = [FilterRule { lane: 99, op_code: 2, value: 0 }];
        assert!(matches!(
            db.scan("papers", &rules, ExecMode::Software),
            Err(NkvError::InvalidLane { lane: 99, .. })
        ));
    }

    #[test]
    fn many_puts_trigger_flush_and_compaction() {
        let m = parse(PAPER_REF_SPEC).unwrap();
        let pe = elaborate(&m, PAPER_PE).unwrap();
        let mut db = NkvDb::default_db();
        let mut cfg = TableConfig::new(pe);
        cfg.lsm.memtable_bytes = 8 * 1024; // tiny, to force activity
        cfg.lsm.c1_sst_limit = 2;
        db.create_table("papers", cfg).unwrap();
        let gen_cfg = PubGraphConfig { papers: 2000, refs: 2000, seed: 4 };
        for p in PaperGen::new(gen_cfg) {
            db.put("papers", encode(&p)).unwrap();
        }
        let sizes = db.level_sizes("papers").unwrap();
        assert!(sizes[1] > 0, "compaction should have populated C2: {sizes:?}");
        // All records remain reachable.
        let p = PaperGen::paper_at(&gen_cfg, 999);
        let (got, _) = db.get("papers", p.id, ExecMode::Software).unwrap();
        assert_eq!(got, Some(encode(&p)));
    }

    #[test]
    fn observability_records_metrics_breakdowns_and_traces() {
        let mut db = paper_db(1, PeVariant::Generated);
        db.enable_observability(1 << 16);
        let cfg = PubGraphConfig { papers: 2000, refs: 2000, seed: 6 };
        db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
        let p = PaperGen::paper_at(&cfg, 10);
        db.get("papers", p.id, ExecMode::Hardware).unwrap();
        let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 2010 }];
        db.scan("papers", &rules, ExecMode::Hardware).unwrap();

        let stats = db.device_stats();
        let get = stats.metrics.op(crate::metrics::OpKind::Get);
        let scan = stats.metrics.op(crate::metrics::OpKind::Scan);
        assert_eq!(get.ops, 1);
        assert_eq!(get.bytes, 80);
        assert!(get.hist.max() > 0);
        assert_eq!(scan.ops, 1);
        assert!(scan.breakdown.flash_ns > 0, "SCAN reads flash");
        assert!(scan.breakdown.pe_ns > 0, "HW SCAN runs PE jobs");
        // Fig. 7(a)'s explanation, measured: a GET spends more time on
        // PE config registers than moving its 80-byte result.
        assert!(
            get.breakdown.cfg_ns >= get.breakdown.nvme_ns,
            "cfg {} < data {}",
            get.breakdown.cfg_ns,
            get.breakdown.nvme_ns
        );

        let trace = db.take_trace();
        assert!(!trace.is_empty());
        assert!(trace.windows(2).all(|w| w[0].start <= w[1].start), "sorted by start");
        assert!(db.take_trace().is_empty(), "take_trace drains");

        let text = format!("{}", db.device_stats());
        assert!(text.contains("GET"), "{text}");
        assert!(text.contains("SCAN"), "{text}");
        assert!(text.contains("health:"), "{text}");
    }

    /// Satellite regression: a trace ring that overflows must count the
    /// evicted spans (surfaced as `DeviceStats::dropped_spans`), never
    /// panic, and never lose the counter across `take_trace` drains.
    #[test]
    fn trace_ring_overflow_is_counted_not_panicked() {
        let mut db = paper_db(1, PeVariant::Generated);
        db.enable_observability(4); // tiny rings: every op overflows
        let cfg = PubGraphConfig { papers: 2000, refs: 2000, seed: 6 };
        db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
        let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 2010 }];
        db.scan("papers", &rules, ExecMode::Hardware).unwrap();
        let stats = db.device_stats();
        assert!(stats.dropped_spans > 0, "tiny ring must report drops");
        let text = format!("{stats}");
        assert!(text.contains("trace: dropped_spans="), "{text}");
        // Draining the rings must not reset the cumulative counter.
        let _ = db.take_trace();
        assert!(db.device_stats().dropped_spans >= stats.dropped_spans);
        // A roomy ring on the same workload reports zero and stays
        // silent in the rendering.
        let mut roomy = paper_db(1, PeVariant::Generated);
        roomy.enable_observability(1 << 20);
        roomy.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
        roomy.scan("papers", &rules, ExecMode::Hardware).unwrap();
        let clean = roomy.device_stats();
        assert_eq!(clean.dropped_spans, 0);
        assert!(!format!("{clean}").contains("dropped_spans"));
    }

    #[test]
    fn observability_is_timing_invisible() {
        // The zero-cost idiom, asserted end to end: identical ops on an
        // observed and an unobserved database take identical simulated
        // time and return identical results.
        let cfg = PubGraphConfig { papers: 1500, refs: 1500, seed: 12 };
        let rules = [FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 2005 }];
        let run = |observe: bool| {
            let mut db = paper_db(2, PeVariant::Generated);
            if observe {
                db.enable_observability(4096);
            }
            db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
            let s = db.scan("papers", &rules, ExecMode::Hardware).unwrap();
            (s.records, s.report.sim_ns, db.clock())
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn puts_record_flush_and_compaction_metrics() {
        let m = parse(PAPER_REF_SPEC).unwrap();
        let pe = elaborate(&m, PAPER_PE).unwrap();
        let mut db = NkvDb::default_db();
        db.enable_metrics();
        let mut cfg = TableConfig::new(pe);
        cfg.lsm.memtable_bytes = 8 * 1024;
        cfg.lsm.c1_sst_limit = 2;
        db.create_table("papers", cfg).unwrap();
        for p in PaperGen::new(PubGraphConfig { papers: 1500, refs: 1500, seed: 4 }) {
            db.put("papers", encode(&p)).unwrap();
        }
        let stats = db.device_stats();
        use crate::metrics::OpKind;
        assert_eq!(stats.metrics.op(OpKind::Put).ops, 1500);
        assert_eq!(stats.metrics.op(OpKind::Put).bytes, 1500 * 80);
        assert!(stats.metrics.op(OpKind::Flush).ops > 0, "tiny memtable must flush");
        assert!(stats.metrics.op(OpKind::Compaction).ops > 0, "c1 limit must compact");
        // Breakdowns stay zero without tracing.
        assert_eq!(stats.metrics.op(OpKind::Flush).breakdown, crate::metrics::Breakdown::default());
    }

    #[test]
    fn simulated_clock_advances_monotonically() {
        let mut db = paper_db(1, PeVariant::Generated);
        let cfg = PubGraphConfig { papers: 500, refs: 500, seed: 8 };
        db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
        let t0 = db.clock();
        db.get("papers", 5, ExecMode::Software).unwrap();
        let t1 = db.clock();
        db.scan(
            "papers",
            &[FilterRule { lane: paper_lanes::YEAR, op_code: 4, value: 1990 }],
            ExecMode::Hardware,
        )
        .unwrap();
        let t2 = db.clock();
        assert!(t0 < t1 && t1 < t2);
    }

    /// Regression: `maintain_at` used to `expect` the table's presence,
    /// panicking on a name no caller verified. Reachable from the
    /// cluster router's shard calls, it must be a typed error.
    #[test]
    fn maintenance_on_an_unknown_table_is_a_typed_error() {
        let mut db = paper_db(1, PeVariant::Generated);
        let err = db.maintain_at("no-such-table", 0).unwrap_err();
        assert_eq!(err, NkvError::UnknownTable("no-such-table".into()));
    }

    /// Regression: the recover path near the old `expect("just
    /// created")` site must reject a manifest entry with no supplied
    /// configuration with a typed error, not a panic — this is exactly
    /// what a cluster heal with a stale table list hits.
    #[test]
    fn recover_without_the_tables_config_is_a_typed_error() {
        let mut db = paper_db(1, PeVariant::Generated);
        let cfg = PubGraphConfig { papers: 200, refs: 200, seed: 11 };
        db.bulk_load("papers", PaperGen::new(cfg).map(|p| encode(&p))).unwrap();
        db.persist().unwrap();
        let mut fresh = CosmosPlatform::default_platform();
        fresh.flash = db.platform_mut().flash.clone();
        fresh.flash.reboot();
        let err = match NkvDb::recover(fresh, Vec::new()) {
            Err(e) => e,
            Ok(_) => panic!("recover without any table config must fail"),
        };
        assert!(
            matches!(err, NkvError::Config(ref msg) if msg.contains("papers")),
            "want a typed Config error naming the table, got {err:?}"
        );
    }
}
