//! Error types of the KV-store.

use cosmos_sim::FlashError;
use std::fmt;

/// Result alias for store operations.
pub type NkvResult<T> = Result<T, NkvError>;

/// Errors surfaced by the KV-store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NkvError {
    /// Underlying flash access failed (ECC, unwritten, out of range).
    Flash(FlashError),
    /// A data block failed its CRC check (corruption detected).
    CorruptBlock { sst_id: u64, block: usize },
    /// Unknown table name.
    UnknownTable(String),
    /// A record of the wrong size was handed to a fixed-record table.
    RecordSizeMismatch { table: String, expected: usize, got: usize },
    /// Records handed to the bulk loader were not in strictly ascending
    /// key order.
    UnsortedBulkLoad { table: String, prev: u64, next: u64 },
    /// A filter rule references a lane the table's layout does not have.
    InvalidLane { table: String, lane: u32 },
    /// The device ran out of flash pages.
    OutOfSpace,
    /// Invalid PE/table configuration (e.g. baseline PE asked for
    /// capabilities [1] does not have).
    Config(String),
    /// A PE result buffer was too short or misaligned to decode
    /// (`offset..offset+need` out of a `len`-byte buffer).
    ResultDecode { offset: usize, need: usize, len: usize },
    /// A persisted structure (SST index page, manifest, data block
    /// record) was truncated or malformed: decoding `what` needed
    /// `need` bytes at `offset` of a `len`-byte buffer.
    Corrupt { what: &'static str, offset: usize, need: usize, len: usize },
    /// A PE never raised DONE within the watchdog timeout and software
    /// fallback is disabled for the table.
    PeTimeout { pe: usize, watchdog_ns: u64 },
    /// A transiently failing page read did not recover within the
    /// configured retry budget.
    RetriesExhausted { sst_id: u64, block: usize, attempts: u32 },
    /// A cluster shard could not serve the operation (quarantined,
    /// dead, or rejected by a device-level fault) and the query ran
    /// under the `Strict` read policy. `Available`-policy reads report
    /// the same condition as `missing_shards` instead of failing.
    ShardUnavailable { shard: usize, reason: String },
}

impl fmt::Display for NkvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NkvError::Flash(e) => write!(f, "flash error: {e}"),
            NkvError::CorruptBlock { sst_id, block } => {
                write!(f, "CRC mismatch in SST {sst_id}, block {block}")
            }
            NkvError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            NkvError::RecordSizeMismatch { table, expected, got } => {
                write!(f, "table `{table}` stores {expected}-byte records, got {got} bytes")
            }
            NkvError::UnsortedBulkLoad { table, prev, next } => {
                write!(f, "bulk load into `{table}` not sorted: key {next} after {prev}")
            }
            NkvError::InvalidLane { table, lane } => {
                write!(f, "table `{table}` has no comparator lane {lane}")
            }
            NkvError::OutOfSpace => write!(f, "flash capacity exhausted"),
            NkvError::Config(msg) => write!(f, "configuration error: {msg}"),
            NkvError::ResultDecode { offset, need, len } => write!(
                f,
                "PE result buffer too short: need {need} bytes at offset {offset}, have {len}"
            ),
            NkvError::Corrupt { what, offset, need, len } => {
                write!(f, "corrupt {what}: need {need} bytes at offset {offset}, have {len}")
            }
            NkvError::PeTimeout { pe, watchdog_ns } => {
                write!(f, "PE {pe} did not signal DONE within {watchdog_ns} ns")
            }
            NkvError::RetriesExhausted { sst_id, block, attempts } => write!(
                f,
                "read of SST {sst_id} block {block} still failing after {attempts} attempts"
            ),
            NkvError::ShardUnavailable { shard, reason } => {
                write!(f, "shard {shard} unavailable: {reason}")
            }
        }
    }
}

impl std::error::Error for NkvError {}

impl From<FlashError> for NkvError {
    fn from(e: FlashError) -> Self {
        NkvError::Flash(e)
    }
}

impl From<ndp_ir::IrError> for NkvError {
    fn from(e: ndp_ir::IrError) -> Self {
        NkvError::Config(e.to_string())
    }
}
