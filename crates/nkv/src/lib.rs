//! nKV: a key-value store with native computational storage.
//!
//! This crate reimplements the nKV architecture of Vinçon et al. \[1\]
//! that the paper's generated accelerators plug into (Sec. III):
//! an LSM-tree KV-store that removes the file-system/block layers and
//! operates *directly on physical flash addresses*, with on-device format
//! parsers so GET and SCAN run in-situ — in software on the ARM cores, or
//! in hardware on the generated PEs, in the hybrid style of the paper's
//! evaluation ("the software executes a very general algorithm and
//! exploits the hardware whenever datablocks have to be filtered or
//! transformed").
//!
//! Structure:
//!
//! * [`memtable`] — the in-memory component `C0` (skip-list);
//! * [`sst`] — Sorted String Tables: 32 KiB data blocks of fixed-size
//!   records in key order, CRC-protected, plus index metadata and a
//!   bloom filter per table;
//! * [`placement`] — physical page allocation across flash
//!   channels/LUNs (nKV controls placement for parallelism and keeps
//!   LSM components apart so compaction does not block scans);
//! * [`lsm`] — levels `C1..Ck`, flush (no compaction on `C0→C1`,
//!   matching the paper), leveled compaction with tombstone purging;
//! * [`plan`] — the query planner: logical GET/SCAN/RANGE_SCAN/
//!   aggregate ops are *lowered* into explicit physical plans (predicate
//!   pushdown into PE registers, software residual filters, parallel PE
//!   job streams) with an `EXPLAIN` rendering;
//! * [`exec`] — per-table executor state ([`exec::TableExec`]) and the
//!   legacy `(rules, mode)` entry points, now thin wrappers that lower
//!   into plans;
//! * [`engine`] — the plan-driven execution loops: block-parallel
//!   SCAN/GET over flash channels with software (ARM) or hardware (PE)
//!   filtering — serial or over N parallel per-channel-group job
//!   streams — returning both results and simulated device time;
//! * [`metrics`] — op-level observability: log-bucket latency
//!   histograms, throughput counters and per-op time breakdowns
//!   attributed from the platform's trace spans;
//! * [`db`] — the [`db::NkvDb`] facade with PUT/GET/DELETE/SCAN/
//!   RANGE_SCAN over multiple tables;
//! * [`queue`] — the multi-tenant NVMe queue engine:
//!   [`db::NkvDb::run_queued`] keeps a window of commands in flight per
//!   client over the platform's submission/completion queues, with
//!   out-of-order completion when commands touch disjoint resources;
//! * [`recovery`] — manifest + index-block based state reconstruction
//!   after a power cycle (all accessor state lives on the device);
//! * [`cluster`] — fleet-level fault domains: [`cluster::NkvCluster`]
//!   shards one namespace across N simulated devices (hash or range
//!   placement), fans reads out device-parallel with deterministic
//!   merges, and runs a per-shard health FSM (`Healthy → Degraded →
//!   Quarantined → Dead → Recovered`) with router-side retry/backoff,
//!   quarantine probing and strict/available read policies.
//!
//! Records are fixed-size application structs (the tuples the PEs parse);
//! the first 8 bytes of every record are its little-endian `u64` key.
//! This *is* the nKV model: the store understands application formats
//! natively instead of wrapping them in opaque blobs.

// Panic-free decode discipline: non-test store code must surface typed
// `NkvError`s instead of unwrapping (test modules are exempt — they are
// compiled out of the non-test build this lint runs on).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod cluster;
pub mod cost;
pub mod db;
pub mod engine;
pub mod error;
pub mod exec;
pub mod lsm;
pub mod memtable;
pub mod metrics;
pub mod placement;
pub mod plan;
pub mod queue;
pub mod recovery;
pub mod sst;
pub mod util;

pub use cluster::{
    ClusterAggregate, ClusterConfig, ClusterGet, ClusterHealthReport, ClusterMultiGet,
    ClusterRunReport, ClusterScan, ClusterStats, HealthFsmConfig, NkvCluster, ReadPolicy,
    ShardHealth, ShardState, ShardStatsRow, ShardStrategy,
};
pub use cost::{AdaptState, CostInputs, CostReport, OpClass, TierCost, PROMOTE_AFTER};
pub use db::{HealthReport, MultiGetResults, NkvDb, ScanSummary, TableConfig};
pub use engine::ParallelScanStats;
pub use error::{NkvError, NkvResult};
pub use exec::{ExecMode, HealthCounters, ResilienceConfig, SimReport};
pub use metrics::{Breakdown, DeviceStats, LatencyHistogram, MetricsRegistry, OpKind, OpMetrics};
pub use plan::{Backend, LogicalOp, PhysOp, PhysicalPlan, PlanCaps, PlanOutcome};
pub use queue::{ClientScript, CommandRecord, Priority, QueueRunConfig, QueueRunReport, QueuedOp};

/// Build an aggregation accumulator for a table's processor (thin
/// re-export so `exec` and `db` share one constructor).
pub(crate) fn oracle_acc(
    bp: &ndp_pe::oracle::BlockProcessor,
    op: ndp_ir::AggOp,
    lane: u32,
) -> Option<ndp_pe::oracle::AggAccumulator> {
    ndp_pe::oracle::AggAccumulator::new(bp, op, lane)
}
