//! The in-memory component `C0`: a skip-list memtable.
//!
//! "The MemTables in C0 are typically implemented using a
//! memory-efficient structure such as skip-lists" (paper, Sec. III-A).
//! This is a classic single-writer skip-list over `u64` keys holding
//! fixed-size record payloads or tombstones; tower heights come from a
//! deterministic xorshift so tests are reproducible.

/// An entry: a full record or a deletion marker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// A live record (packed bytes, key at offset 0).
    Value(Vec<u8>),
    /// A tombstone shadowing older versions of the key.
    Tombstone,
}

const MAX_HEIGHT: usize = 12;

struct Node {
    key: u64,
    entry: Entry,
    /// next[i] = index of the next node at level i (usize::MAX = none).
    next: [usize; MAX_HEIGHT],
}

/// A skip-list memtable.
pub struct MemTable {
    nodes: Vec<Node>,
    /// head.next per level.
    head: [usize; MAX_HEIGHT],
    height: usize,
    rng: u64,
    /// Approximate payload bytes (records + per-entry overhead).
    bytes: usize,
    live_entries: usize,
}

const NIL: usize = usize::MAX;

impl MemTable {
    /// An empty memtable with a deterministic tower-height seed.
    pub fn new(seed: u64) -> Self {
        Self {
            nodes: Vec::new(),
            head: [NIL; MAX_HEIGHT],
            height: 1,
            rng: seed | 1,
            bytes: 0,
            live_entries: 0,
        }
    }

    fn random_height(&mut self) -> usize {
        // xorshift64*; each extra level with probability 1/4.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        let mut h = 1;
        let mut bits = r;
        while h < MAX_HEIGHT && bits & 3 == 0 {
            h += 1;
            bits >>= 2;
        }
        h
    }

    /// Find the predecessor chain for `key`; returns per-level indices of
    /// the last node with a key `< key` (or NIL for the head).
    fn predecessors(&self, key: u64) -> [usize; MAX_HEIGHT] {
        let mut preds = [NIL; MAX_HEIGHT];
        let mut cur = NIL; // head
        for level in (0..self.height).rev() {
            loop {
                let next = if cur == NIL { self.head[level] } else { self.nodes[cur].next[level] };
                if next != NIL && self.nodes[next].key < key {
                    cur = next;
                } else {
                    break;
                }
            }
            preds[level] = cur;
        }
        preds
    }

    /// Insert or replace `key` with a record.
    pub fn put(&mut self, key: u64, record: Vec<u8>) {
        self.insert_entry(key, Entry::Value(record));
    }

    /// Insert a tombstone for `key`.
    pub fn delete(&mut self, key: u64) {
        self.insert_entry(key, Entry::Tombstone);
    }

    fn insert_entry(&mut self, key: u64, entry: Entry) {
        let preds = self.predecessors(key);
        let at = if preds[0] == NIL { self.head[0] } else { self.nodes[preds[0]].next[0] };
        if at != NIL && self.nodes[at].key == key {
            // Replace in place (updates are out-of-place only across
            // components, not inside C0).
            let old = std::mem::replace(&mut self.nodes[at].entry, entry);
            self.bytes -= entry_bytes(&old);
            self.bytes += entry_bytes(&self.nodes[at].entry);
            if matches!(old, Entry::Value(_)) {
                self.live_entries -= 1;
            }
            if matches!(self.nodes[at].entry, Entry::Value(_)) {
                self.live_entries += 1;
            }
            return;
        }

        let h = self.random_height();
        let idx = self.nodes.len();
        self.bytes += entry_bytes(&entry) + 48; // payload + node overhead
        if matches!(entry, Entry::Value(_)) {
            self.live_entries += 1;
        }
        let mut node = Node { key, entry, next: [NIL; MAX_HEIGHT] };
        for (level, &pred) in preds.iter().enumerate().take(h) {
            if level >= self.height {
                node.next[level] = NIL;
                self.head[level] = idx;
            } else if pred == NIL {
                node.next[level] = self.head[level];
                self.head[level] = idx;
            } else {
                node.next[level] = self.nodes[pred].next[level];
                // placed after push below
            }
        }
        self.nodes.push(node);
        for (level, &pred) in preds.iter().enumerate().take(h.min(self.height)) {
            if pred != NIL {
                self.nodes[pred].next[level] = idx;
            }
        }
        self.height = self.height.max(h);
    }

    /// Look up `key`.
    pub fn get(&self, key: u64) -> Option<&Entry> {
        let preds = self.predecessors(key);
        let at = if preds[0] == NIL { self.head[0] } else { self.nodes[preds[0]].next[0] };
        if at != NIL && self.nodes[at].key == key {
            Some(&self.nodes[at].entry)
        } else {
            None
        }
    }

    /// Iterate entries in ascending key order.
    pub fn iter(&self) -> MemIter<'_> {
        MemIter { table: self, cur: self.head[0] }
    }

    /// Approximate memory footprint in bytes (drives flush decisions).
    pub fn approximate_bytes(&self) -> usize {
        self.bytes
    }

    /// Number of entries (including tombstones).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the table holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of live (non-tombstone) entries.
    pub fn live_entries(&self) -> usize {
        self.live_entries
    }
}

fn entry_bytes(e: &Entry) -> usize {
    match e {
        Entry::Value(v) => v.len(),
        Entry::Tombstone => 0,
    }
}

/// Sorted iterator over a memtable.
pub struct MemIter<'a> {
    table: &'a MemTable,
    cur: usize,
}

impl<'a> Iterator for MemIter<'a> {
    type Item = (u64, &'a Entry);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let n = &self.table.nodes[self.cur];
        self.cur = n.next[0];
        Some((n.key, &n.entry))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(key: u64) -> Vec<u8> {
        let mut v = key.to_le_bytes().to_vec();
        v.extend_from_slice(&[0xAB; 12]);
        v
    }

    #[test]
    fn put_get_round_trip() {
        let mut m = MemTable::new(7);
        m.put(5, rec(5));
        m.put(1, rec(1));
        m.put(9, rec(9));
        assert_eq!(m.get(5), Some(&Entry::Value(rec(5))));
        assert_eq!(m.get(2), None);
        assert_eq!(m.len(), 3);
        assert_eq!(m.live_entries(), 3);
    }

    #[test]
    fn replace_updates_in_place() {
        let mut m = MemTable::new(7);
        m.put(5, rec(5));
        let mut newer = rec(5);
        newer[8] = 0xFF;
        m.put(5, newer.clone());
        assert_eq!(m.get(5), Some(&Entry::Value(newer)));
        assert_eq!(m.len(), 1, "replacement must not add nodes");
    }

    #[test]
    fn tombstones_shadow_values() {
        let mut m = MemTable::new(7);
        m.put(5, rec(5));
        m.delete(5);
        assert_eq!(m.get(5), Some(&Entry::Tombstone));
        assert_eq!(m.live_entries(), 0);
        // Deleting a missing key still records the tombstone (it must
        // shadow versions in deeper components).
        m.delete(77);
        assert_eq!(m.get(77), Some(&Entry::Tombstone));
    }

    #[test]
    fn iteration_is_key_sorted() {
        let mut m = MemTable::new(3);
        let keys = [44u64, 2, 999, 17, 3, 500, 1, 88, 6];
        for &k in &keys {
            m.put(k, rec(k));
        }
        let got: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        let mut want = keys.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn large_insert_stays_sorted_and_complete() {
        let mut m = MemTable::new(0xDEAD);
        // Insert in an adversarial (descending) order.
        for k in (0..5000u64).rev() {
            m.put(k, rec(k));
        }
        assert_eq!(m.len(), 5000);
        let got: Vec<u64> = m.iter().map(|(k, _)| k).collect();
        assert!(got.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(got.len(), 5000);
        for k in (0..5000).step_by(97) {
            assert!(m.get(k).is_some());
        }
    }

    #[test]
    fn approximate_bytes_grows_and_tracks_replacement() {
        let mut m = MemTable::new(1);
        let before = m.approximate_bytes();
        m.put(1, vec![0u8; 100]);
        let after_one = m.approximate_bytes();
        assert!(after_one >= before + 100);
        m.put(1, vec![0u8; 10]);
        assert!(m.approximate_bytes() < after_one);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = MemTable::new(42);
        let mut b = MemTable::new(42);
        for k in 0..100 {
            a.put(k, rec(k));
            b.put(k, rec(k));
        }
        assert_eq!(a.height, b.height);
    }
}
