//! Small self-contained utilities: CRC-32C and a bloom filter.
//!
//! Both are implemented here rather than pulled in as dependencies
//! because their exact behaviour is part of the on-flash format this
//! repository defines (see DESIGN.md's dependency policy).

use crate::error::{NkvError, NkvResult};

/// Decode `N` little-endian bytes at `offset`, reporting truncation as a
/// typed [`NkvError::Corrupt`] naming the structure being decoded.
fn le_bytes<const N: usize>(bytes: &[u8], offset: usize, what: &'static str) -> NkvResult<[u8; N]> {
    offset
        .checked_add(N)
        .and_then(|end| bytes.get(offset..end))
        .and_then(|s| s.try_into().ok())
        .ok_or(NkvError::Corrupt { what, offset, need: N, len: bytes.len() })
}

/// Decode a little-endian `u16` at `offset` with a typed error.
pub(crate) fn le_u16(bytes: &[u8], offset: usize, what: &'static str) -> NkvResult<u16> {
    le_bytes::<2>(bytes, offset, what).map(u16::from_le_bytes)
}

/// Decode a little-endian `u32` at `offset` with a typed error.
pub(crate) fn le_u32(bytes: &[u8], offset: usize, what: &'static str) -> NkvResult<u32> {
    le_bytes::<4>(bytes, offset, what).map(u32::from_le_bytes)
}

/// Decode a little-endian `u64` at `offset` with a typed error.
pub(crate) fn le_u64(bytes: &[u8], offset: usize, what: &'static str) -> NkvResult<u64> {
    le_bytes::<8>(bytes, offset, what).map(u64::from_le_bytes)
}

/// CRC-32C (Castagnoli), table-driven, as used by RocksDB block footers.
pub fn crc32c(data: &[u8]) -> u32 {
    const POLY: u32 = 0x82F6_3B78; // reflected 0x1EDC6F41
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *e = crc;
        }
        t
    });
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ table[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// A fixed-size bloom filter over `u64` keys (double hashing, k probes).
///
/// Every SST carries one so GET and shadow checks can skip tables that
/// cannot contain a key — the standard LSM read-path optimization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bloom {
    bits: Vec<u64>,
    n_bits: u64,
    k: u32,
}

impl Bloom {
    /// Build an empty filter sized for `n` keys at `bits_per_key`.
    pub fn new(n: usize, bits_per_key: u32) -> Self {
        let n_bits = ((n as u64 * u64::from(bits_per_key)).max(64)).next_multiple_of(64);
        // k ≈ bits_per_key · ln 2, clamped to a sane range.
        let k = ((f64::from(bits_per_key) * 0.69) as u32).clamp(1, 12);
        Self { bits: vec![0; (n_bits / 64) as usize], n_bits, k }
    }

    fn hashes(key: u64) -> (u64, u64) {
        // Two independent mixes (splitmix-style).
        let mut a = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        a ^= a >> 29;
        a = a.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        a ^= a >> 32;
        let mut b = key.wrapping_add(0x94D0_49BB_1331_11EB).wrapping_mul(0xD6E8_FEB8_6659_FD93);
        b ^= b >> 31;
        (a, b | 1) // odd step so probes cover the table
    }

    /// Insert a key.
    pub fn insert(&mut self, key: u64) {
        let (h, step) = Self::hashes(key);
        for i in 0..self.k {
            let bit = h.wrapping_add(step.wrapping_mul(u64::from(i))) % self.n_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// May the filter contain `key`? (No false negatives.)
    pub fn may_contain(&self, key: u64) -> bool {
        let (h, step) = Self::hashes(key);
        (0..self.k).all(|i| {
            let bit = h.wrapping_add(step.wrapping_mul(u64::from(i))) % self.n_bits;
            self.bits[(bit / 64) as usize] & (1 << (bit % 64)) != 0
        })
    }

    /// Size of the filter in bytes.
    pub fn byte_size(&self) -> usize {
        self.bits.len() * 8
    }

    /// Raw parts for serialization: `(words, n_bits, k)`.
    pub fn to_parts(&self) -> (&[u64], u64, u32) {
        (&self.bits, self.n_bits, self.k)
    }

    /// Rebuild a filter from serialized parts (inverse of
    /// [`Bloom::to_parts`]).
    pub fn from_parts(words: Vec<u64>, n_bits: u64, k: u32) -> Self {
        assert_eq!(words.len() as u64 * 64, n_bits, "word count must match n_bits");
        Self { bits: words, n_bits, k }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32c_known_vectors() {
        // Standard CRC-32C test vectors.
        assert_eq!(crc32c(b""), 0x0000_0000);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
    }

    #[test]
    fn crc_detects_single_bit_flips() {
        let mut data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let clean = crc32c(&data);
        for byte in 0..data.len() {
            data[byte] ^= 0x10;
            assert_ne!(crc32c(&data), clean, "flip at byte {byte} undetected");
            data[byte] ^= 0x10;
        }
    }

    #[test]
    fn bloom_has_no_false_negatives() {
        let mut b = Bloom::new(10_000, 10);
        for k in 0..10_000u64 {
            b.insert(k * 7 + 1);
        }
        for k in 0..10_000u64 {
            assert!(b.may_contain(k * 7 + 1));
        }
    }

    #[test]
    fn bloom_false_positive_rate_is_low() {
        let mut b = Bloom::new(10_000, 10);
        for k in 0..10_000u64 {
            b.insert(k);
        }
        let fp = (10_000u64..110_000).filter(|&k| b.may_contain(k)).count();
        let rate = fp as f64 / 100_000.0;
        assert!(rate < 0.03, "false positive rate {rate} too high");
    }

    #[test]
    fn empty_bloom_contains_nothing_much() {
        let b = Bloom::new(100, 10);
        let fp = (0..1000u64).filter(|&k| b.may_contain(k)).count();
        assert_eq!(fp, 0);
    }

    #[test]
    fn bloom_parts_round_trip() {
        let mut b = Bloom::new(500, 10);
        for k in 0..500u64 {
            b.insert(k * 13);
        }
        let (words, n_bits, k) = b.to_parts();
        let rebuilt = Bloom::from_parts(words.to_vec(), n_bits, k);
        assert_eq!(rebuilt, b);
        for key in 0..500u64 {
            assert!(rebuilt.may_contain(key * 13));
        }
    }

    #[test]
    fn bloom_sizes_scale_with_keys() {
        assert!(Bloom::new(1000, 10).byte_size() >= 1000 * 10 / 8);
        assert!(Bloom::new(1, 10).byte_size() >= 8);
    }
}
