//! Op-level device metrics.
//!
//! The third observability layer (next to the PE's hardware performance
//! counters and the platform's DES trace): a lock-cheap registry of
//! per-operation latency histograms, throughput counters and time
//! breakdowns that the firmware would keep in DRAM and expose through an
//! admin command.
//!
//! * [`LatencyHistogram`] — 64 power-of-two buckets over simulated
//!   nanoseconds (bucket `i` holds durations with bit-length `i`), so
//!   recording is one shift-free `leading_zeros` and quantiles come from
//!   bucket upper bounds — the classic log-bucket scheme, exact enough
//!   for p50/p95/p99 reporting and constant-size forever;
//! * [`Breakdown`] — where an operation's simulated time went
//!   (flash vs DRAM vs PE vs config registers vs NVMe), attributed from
//!   the platform's drained trace spans;
//! * [`MetricsRegistry`] — one [`OpMetrics`] per [`OpKind`];
//! * [`DeviceStats`] — the device-wide snapshot: every op's metrics plus
//!   the [`HealthReport`], with a stable `Display` rendering.
//!
//! Like fault injection and tracing, metrics follow the
//! zero-cost-when-disabled idiom: `NkvDb` holds an
//! `Option<MetricsRegistry>` and every record site is one branch.

use crate::db::HealthReport;
use cosmos_sim::{SimNs, TraceEvent, TraceKind};
use std::fmt;

/// Number of log buckets (covers the full `u64` nanosecond range).
pub const HIST_BUCKETS: usize = 64;

/// Log-bucket latency histogram over simulated nanoseconds.
///
/// Bucket `0` holds zero-duration samples; bucket `i >= 1` holds
/// durations `d` with `2^(i-1) <= d < 2^i`. Quantiles are answered with
/// each bucket's upper bound (clamped to the observed maximum), so the
/// relative error is bounded by 2x — plenty for latency reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
    max: SimNs,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self { buckets: [0; HIST_BUCKETS], count: 0, sum: 0, max: 0 }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(ns: SimNs) -> usize {
        if ns == 0 {
            0
        } else {
            (64 - ns.leading_zeros() as usize).min(HIST_BUCKETS - 1)
        }
    }

    /// Record one duration.
    pub fn record(&mut self, ns: SimNs) {
        self.buckets[Self::bucket_of(ns)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(ns);
        self.max = self.max.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded durations (saturating).
    pub fn sum(&self) -> SimNs {
        self.sum
    }

    /// Largest recorded duration.
    pub fn max(&self) -> SimNs {
        self.max
    }

    /// Mean duration (0 when empty).
    pub fn mean(&self) -> SimNs {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The quantile `q` in `[0, 1]`: the upper bound of the bucket
    /// holding the `ceil(q * count)`-th smallest sample, clamped to the
    /// observed maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> SimNs {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            if cum >= target {
                // Bucket 63 is the overflow bucket (durations with bit
                // length >= 63), so its only safe upper bound is `max`.
                let upper = match i {
                    0 => 0,
                    63 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Raw bucket counts (index = bit length of the duration).
    pub fn buckets(&self) -> &[u64; HIST_BUCKETS] {
        &self.buckets
    }

    /// Fold `other` into `self` bucket-wise. Because the buckets are
    /// fixed log2 bins, merging per-PE-job histograms into the op-level
    /// one is exact — every sample lands in the same bin it was
    /// recorded in, and nothing is double counted.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Like [`LatencyHistogram::percentile_summary`] but with the deep
    /// tail (p99.9) included — the loadgen report's format.
    pub fn tail_summary(&self) -> String {
        if self.count == 0 {
            return "n=0".to_string();
        }
        format!(
            "n={} p50={} p95={} p99={} p99.9={} max={}",
            self.count,
            fmt_ns(self.quantile(0.50)),
            fmt_ns(self.quantile(0.95)),
            fmt_ns(self.quantile(0.99)),
            fmt_ns(self.quantile(0.999)),
            fmt_ns(self.max),
        )
    }

    /// One-line percentile summary for reports. An empty histogram
    /// renders as the stable `"n=0"` — never fabricated zero quantiles.
    pub fn percentile_summary(&self) -> String {
        if self.count == 0 {
            return "n=0".to_string();
        }
        format!(
            "n={} p50={} p95={} p99={} max={}",
            self.count,
            fmt_ns(self.quantile(0.50)),
            fmt_ns(self.quantile(0.95)),
            fmt_ns(self.quantile(0.99)),
            fmt_ns(self.max),
        )
    }
}

/// The operation classes the device accounts separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    Get,
    Scan,
    Put,
    Flush,
    Compaction,
    ReadRepair,
}

impl OpKind {
    /// Every kind, in the stable reporting order.
    pub const ALL: [OpKind; 6] = [
        OpKind::Get,
        OpKind::Scan,
        OpKind::Put,
        OpKind::Flush,
        OpKind::Compaction,
        OpKind::ReadRepair,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            OpKind::Get => "GET",
            OpKind::Scan => "SCAN",
            OpKind::Put => "PUT",
            OpKind::Flush => "FLUSH",
            OpKind::Compaction => "COMPACTION",
            OpKind::ReadRepair => "READ_REPAIR",
        }
    }

    fn index(self) -> usize {
        match self {
            OpKind::Get => 0,
            OpKind::Scan => 1,
            OpKind::Put => 2,
            OpKind::Flush => 3,
            OpKind::Compaction => 4,
            OpKind::ReadRepair => 5,
        }
    }
}

/// Where an operation's simulated time went, summed over the trace
/// spans attributed to it. Spans overlap (the device is parallel), so
/// the component sum can legitimately exceed the op's wall latency.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// NAND reads + programs (tR/tPROG + bus + controller DMA).
    pub flash_ns: SimNs,
    /// Shared PS-DRAM port transfers.
    pub dram_ns: SimNs,
    /// PE block jobs (START -> DONE).
    pub pe_ns: SimNs,
    /// PE control-register accesses (PS<->PL round trips).
    pub cfg_ns: SimNs,
    /// NVMe host transfers.
    pub nvme_ns: SimNs,
}

impl Breakdown {
    /// Fold one trace span into the matching component.
    pub fn add_span(&mut self, ev: &TraceEvent) {
        match ev.kind {
            TraceKind::FlashRead { .. } | TraceKind::FlashProgram { .. } => {
                self.flash_ns += ev.dur;
            }
            TraceKind::DramTransfer { .. } => self.dram_ns += ev.dur,
            TraceKind::PeJob { .. } => self.pe_ns += ev.dur,
            TraceKind::RegAccess { .. } => self.cfg_ns += ev.dur,
            // Queue envelope spans are doorbell MMIO + SQE/CQE traffic on
            // the host link: fold them into the NVMe component so the
            // breakdown layout (and its Display) stays unchanged.
            TraceKind::NvmeTransfer { .. }
            | TraceKind::QueueSubmit { .. }
            | TraceKind::QueueComplete { .. } => self.nvme_ns += ev.dur,
            // A cache hit's DRAM burst is already attributed through
            // its DramTransfer span; the marker span carries no
            // additional busy time.
            TraceKind::CacheHit { .. } => {}
        }
    }

    /// Total attributed busy time across all components.
    pub fn total(&self) -> SimNs {
        self.flash_ns + self.dram_ns + self.pe_ns + self.cfg_ns + self.nvme_ns
    }

    /// Fold `other`'s component times into `self` (cross-shard
    /// aggregation). Component-wise addition, so merging per-shard
    /// breakdowns conserves the fleet's total busy time exactly.
    pub fn merge(&mut self, other: &Breakdown) {
        self.flash_ns += other.flash_ns;
        self.dram_ns += other.dram_ns;
        self.pe_ns += other.pe_ns;
        self.cfg_ns += other.cfg_ns;
        self.nvme_ns += other.nvme_ns;
    }
}

/// Metrics of one operation class.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpMetrics {
    /// Operations completed.
    pub ops: u64,
    /// Result/payload bytes moved by those operations.
    pub bytes: u64,
    /// Latency distribution.
    pub hist: LatencyHistogram,
    /// Component time attribution (zeroed while tracing is off).
    pub breakdown: Breakdown,
}

/// The device's metrics registry: one [`OpMetrics`] per [`OpKind`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    per_op: [OpMetrics; 6],
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one completed operation.
    pub fn record(&mut self, kind: OpKind, latency_ns: SimNs, bytes: u64) {
        let m = &mut self.per_op[kind.index()];
        m.ops += 1;
        m.bytes += bytes;
        m.hist.record(latency_ns);
    }

    /// Attribute a batch of trace spans to `kind`'s breakdown.
    pub fn attribute(&mut self, kind: OpKind, spans: &[TraceEvent]) {
        let b = &mut self.per_op[kind.index()].breakdown;
        for ev in spans {
            b.add_span(ev);
        }
    }

    /// Metrics of one operation class.
    pub fn op(&self, kind: OpKind) -> &OpMetrics {
        &self.per_op[kind.index()]
    }

    /// Total operations recorded across all classes.
    pub fn total_ops(&self) -> u64 {
        self.per_op.iter().map(|m| m.ops).sum()
    }

    /// Fold `other` into `self`, op class by op class: histograms merge
    /// bucket-exactly ([`LatencyHistogram::merge`]), counters and
    /// breakdowns add. This is the cross-shard fold — merging N shard
    /// registries equals recording every shard's samples into one.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (a, b) in self.per_op.iter_mut().zip(other.per_op.iter()) {
            a.ops += b.ops;
            a.bytes += b.bytes;
            a.hist.merge(&b.hist);
            a.breakdown.merge(&b.breakdown);
        }
    }

    /// Busy time summed over every op class's breakdown — the per-shard
    /// number the cluster's skew metric compares.
    pub fn total_breakdown(&self) -> Breakdown {
        let mut total = Breakdown::default();
        for m in &self.per_op {
            total.merge(&m.breakdown);
        }
        total
    }
}

/// Device-wide observability snapshot: per-op metrics plus health.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Per-op metrics, indexed like [`OpKind::ALL`].
    pub metrics: MetricsRegistry,
    /// Fault/resilience counters.
    pub health: HealthReport,
    /// DRAM block-cache counters (`None` while the cache is disabled,
    /// keeping the rendering byte-identical to the pre-cache device).
    pub cache: Option<cosmos_sim::CacheStats>,
    /// Trace spans silently evicted by ring overflow since the last
    /// drain. Nonzero means the flame graph (and the breakdown columns
    /// attributed from drained spans) undercounts — grow the ring
    /// capacity. Rendered only when nonzero so healthy output is
    /// byte-identical to the pre-counter device.
    pub dropped_spans: u64,
}

/// Render a nanosecond duration with a readable unit. Stable across
/// runs for identical inputs (used by snapshot-style output checks).
pub fn fmt_ns(ns: SimNs) -> String {
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn pct(part: SimNs, total: SimNs) -> f64 {
    if total == 0 {
        0.0
    } else {
        part as f64 * 100.0 / total as f64
    }
}

impl fmt::Display for DeviceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "device stats ({} ops)", self.metrics.total_ops())?;
        for kind in OpKind::ALL {
            let m = self.metrics.op(kind);
            if m.ops == 0 {
                continue;
            }
            writeln!(
                f,
                "  {:<11} ops={} bytes={} p50={} p95={} p99={} max={}",
                kind.name(),
                m.ops,
                m.bytes,
                fmt_ns(m.hist.quantile(0.50)),
                fmt_ns(m.hist.quantile(0.95)),
                fmt_ns(m.hist.quantile(0.99)),
                fmt_ns(m.hist.max()),
            )?;
            let b = m.breakdown;
            if b.total() > 0 {
                writeln!(
                    f,
                    "              flash={} ({:.1}%) dram={} ({:.1}%) pe={} ({:.1}%) \
                     cfg={} ({:.1}%) nvme={} ({:.1}%)",
                    fmt_ns(b.flash_ns),
                    pct(b.flash_ns, b.total()),
                    fmt_ns(b.dram_ns),
                    pct(b.dram_ns, b.total()),
                    fmt_ns(b.pe_ns),
                    pct(b.pe_ns, b.total()),
                    fmt_ns(b.cfg_ns),
                    pct(b.cfg_ns, b.total()),
                    fmt_ns(b.nvme_ns),
                    pct(b.nvme_ns, b.total()),
                )?;
            }
        }
        if let Some(c) = &self.cache {
            writeln!(
                f,
                "  cache: lookups={} hits={} ({:.1}%) misses={} insertions={} \
                 evictions={} invalidations={}",
                c.lookups,
                c.hits,
                c.hit_rate() * 100.0,
                c.misses,
                c.insertions,
                c.evictions,
                c.invalidations,
            )?;
        }
        if self.dropped_spans > 0 {
            writeln!(f, "  trace: dropped_spans={} (ring overflowed)", self.dropped_spans)?;
        }
        write!(f, "{}", self.health)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_quantiles_and_mean() {
        let mut h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        for ns in [0u64, 1, 2, 3, 100, 1000, 1_000_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum(), 1_001_106);
        assert_eq!(h.max(), 1_000_000);
        assert_eq!(h.mean(), 1_001_106 / 7);
        // Bucket layout: 0 -> b0; 1 -> b1; 2,3 -> b2; 100 -> b7;
        // 1000 -> b10; 1_000_000 -> b20.
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[2], 2);
        assert_eq!(h.buckets()[7], 1);
        assert_eq!(h.buckets()[10], 1);
        assert_eq!(h.buckets()[20], 1);
        // p50 = 4th smallest (3) -> bucket 2's upper bound.
        assert_eq!(h.quantile(0.50), 3);
        // p99 = 7th smallest -> top bucket, clamped to the observed max.
        assert_eq!(h.quantile(0.99), 1_000_000);
        // q = 1.0 is the max exactly.
        assert_eq!(h.quantile(1.0), 1_000_000);
    }

    #[test]
    fn quantile_upper_bound_is_within_2x_of_sample() {
        let mut h = LatencyHistogram::new();
        h.record(1500);
        // 1500 has bit length 11 -> upper bound 2047, clamped to max.
        assert_eq!(h.quantile(0.5), 1500);
        h.record(1501);
        let q = h.quantile(0.5);
        assert!((1500..=2 * 1500).contains(&q), "got {q}");
    }

    #[test]
    fn merge_equals_recording_into_one_histogram() {
        let samples_a = [0u64, 5, 130, 9_000, 1_000_000];
        let samples_b = [3u64, 130, 77_000];
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        let mut all = LatencyHistogram::new();
        for &s in &samples_a {
            a.record(s);
            all.record(s);
        }
        for &s in &samples_b {
            b.record(s);
            all.record(s);
        }
        a.merge(&b);
        assert_eq!(a.buckets(), all.buckets(), "bucket-exact, no double counting");
        assert_eq!(a.count(), all.count());
        assert_eq!(a.sum(), all.sum());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.percentile_summary(), all.percentile_summary());
        // Merging an empty histogram changes nothing.
        a.merge(&LatencyHistogram::new());
        assert_eq!(a.buckets(), all.buckets());
    }

    #[test]
    fn tail_summary_includes_p999() {
        let mut h = LatencyHistogram::new();
        for i in 0..1000u64 {
            h.record(i);
        }
        let s = h.tail_summary();
        assert!(s.contains("p99.9="), "{s}");
        assert!(s.starts_with("n=1000 p50="), "{s}");
        assert_eq!(LatencyHistogram::new().tail_summary(), "n=0");
    }

    #[test]
    fn empty_histogram_summary_is_stable_n0() {
        let h = LatencyHistogram::new();
        assert_eq!(h.percentile_summary(), "n=0");
        assert_eq!(h.percentile_summary(), "n=0", "byte-stable across calls");
    }

    #[test]
    fn populated_histogram_summary_lists_percentiles() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(500_000);
        }
        h.record(4_000_000);
        let s = h.percentile_summary();
        assert!(s.starts_with("n=100 p50="), "{s}");
        assert!(s.contains("p95="), "{s}");
        assert!(s.ends_with("max=4.00 ms"), "{s}");
    }

    #[test]
    fn queue_spans_fold_into_nvme_component() {
        let mut b = Breakdown::default();
        b.add_span(&TraceEvent {
            kind: TraceKind::QueueSubmit { qid: 0, cid: 1 },
            start: 0,
            dur: 7,
        });
        b.add_span(&TraceEvent {
            kind: TraceKind::QueueComplete { qid: 0, cid: 1 },
            start: 9,
            dur: 11,
        });
        assert_eq!(b.nvme_ns, 18);
        assert_eq!(b.total(), 18);
    }

    #[test]
    fn breakdown_attributes_every_span_kind() {
        let mut b = Breakdown::default();
        let spans = [
            TraceEvent { kind: TraceKind::FlashRead { channel: 0, lun: 0 }, start: 0, dur: 10 },
            TraceEvent { kind: TraceKind::FlashProgram { channel: 0, lun: 0 }, start: 0, dur: 20 },
            TraceEvent {
                kind: TraceKind::DramTransfer {
                    client: cosmos_sim::dram::DramClient::PeLoad,
                    bytes: 1,
                    wait_ns: 0,
                },
                start: 0,
                dur: 30,
            },
            TraceEvent { kind: TraceKind::PeJob { pe: 0, cycles: 4 }, start: 0, dur: 40 },
            TraceEvent {
                kind: TraceKind::RegAccess { pe: 0, writes: 1, reads: 0 },
                start: 0,
                dur: 50,
            },
            TraceEvent { kind: TraceKind::NvmeTransfer { bytes: 8 }, start: 0, dur: 60 },
        ];
        for ev in &spans {
            b.add_span(ev);
        }
        assert_eq!(b.flash_ns, 30);
        assert_eq!(b.dram_ns, 30);
        assert_eq!(b.pe_ns, 40);
        assert_eq!(b.cfg_ns, 50);
        assert_eq!(b.nvme_ns, 60);
        assert_eq!(b.total(), 210);
    }

    #[test]
    fn registry_records_per_kind() {
        let mut r = MetricsRegistry::new();
        r.record(OpKind::Get, 1000, 80);
        r.record(OpKind::Get, 2000, 80);
        r.record(OpKind::Scan, 5_000_000, 4096);
        assert_eq!(r.op(OpKind::Get).ops, 2);
        assert_eq!(r.op(OpKind::Get).bytes, 160);
        assert_eq!(r.op(OpKind::Scan).hist.max(), 5_000_000);
        assert_eq!(r.op(OpKind::Put).ops, 0);
        assert_eq!(r.total_ops(), 3);
    }

    #[test]
    fn device_stats_render_is_stable_and_skips_idle_ops() {
        let mut s = DeviceStats::default();
        s.metrics.record(OpKind::Get, 250_000, 80);
        s.metrics.attribute(
            OpKind::Get,
            &[TraceEvent { kind: TraceKind::NvmeTransfer { bytes: 80 }, start: 0, dur: 67 }],
        );
        let text = format!("{s}");
        assert!(text.contains("GET         ops=1 bytes=80"), "{text}");
        assert!(text.contains("nvme=67 ns (100.0%)"), "{text}");
        assert!(!text.contains("SCAN"), "idle op classes are omitted: {text}");
        // Byte-stable for identical inputs.
        assert_eq!(text, format!("{s}"));
    }

    /// Seeded property sweep (SplitMix64, proptest-style): a histogram
    /// holding exactly one sample must report that sample's bin — i.e.
    /// the sample itself, since bucket upper bounds clamp to the
    /// observed max — for *every* quantile, including the deep tail.
    #[test]
    fn prop_single_sample_owns_every_quantile() {
        let mut rng = ndp_workload::SplitMix64::new(0xCAFE);
        let qs = [0.0, 0.001, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0];
        for case in 0..500 {
            // Mix magnitudes: small counts, bucket boundaries, huge
            // durations (bucket 63 included via u64::MAX - k).
            let ns = match case % 4 {
                0 => rng.gen_u64(16),
                1 => 1u64 << rng.gen_u64(64),
                2 => rng.next_u64() >> rng.gen_u64(60),
                _ => u64::MAX - rng.gen_u64(1 << 20),
            };
            let mut h = LatencyHistogram::new();
            h.record(ns);
            for &q in &qs {
                assert_eq!(h.quantile(q), ns, "q={q} ns={ns}");
            }
        }
    }

    /// Seeded property sweep: for arbitrary sample sets, quantiles are
    /// monotone in `q`, never exceed the observed max (the p99.9 clamp
    /// of the bugfix audit), and never undershoot the smallest sample's
    /// bucket's span.
    #[test]
    fn prop_quantiles_are_monotone_and_clamped_to_max() {
        let mut rng = ndp_workload::SplitMix64::new(0xF00D);
        let qs = [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0];
        for _ in 0..200 {
            let n = 1 + rng.gen_u64(64) as usize;
            let mut h = LatencyHistogram::new();
            let mut min_sample = u64::MAX;
            for _ in 0..n {
                let ns = rng.next_u64() >> rng.gen_u64(64);
                h.record(ns);
                min_sample = min_sample.min(ns);
            }
            let vals: Vec<SimNs> = qs.iter().map(|&q| h.quantile(q)).collect();
            for w in vals.windows(2) {
                assert!(w[0] <= w[1], "quantiles must be monotone: {vals:?}");
            }
            assert!(vals.iter().all(|&v| v <= h.max()), "q must clamp to max: {vals:?}");
            // The lowest quantile answers with the smallest sample's
            // bucket, whose upper bound is within 2x of the sample.
            assert!(
                vals[0] >= min_sample / 2,
                "q=0 answered below the smallest sample's bin: {} < {min_sample}/2",
                vals[0]
            );
        }
    }

    #[test]
    fn device_stats_cache_line_renders_only_when_enabled() {
        let mut s = DeviceStats::default();
        s.metrics.record(OpKind::Scan, 1_000_000, 4096);
        let off = format!("{s}");
        assert!(!off.contains("cache:"), "disabled cache must not render: {off}");
        s.cache = Some(cosmos_sim::CacheStats {
            lookups: 4,
            hits: 3,
            misses: 1,
            insertions: 1,
            evictions: 0,
            invalidations: 2,
            hit_bytes: 96 * 1024,
        });
        let on = format!("{s}");
        assert!(
            on.contains(
                "cache: lookups=4 hits=3 (75.0%) misses=1 insertions=1 \
                         evictions=0 invalidations=2"
            ),
            "{on}"
        );
    }

    #[test]
    fn registry_merge_equals_recording_into_one() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        let mut all = MetricsRegistry::new();
        for (into_a, kind, ns, bytes) in [
            (true, OpKind::Get, 1_000u64, 80u64),
            (true, OpKind::Scan, 5_000_000, 4096),
            (false, OpKind::Get, 2_000, 80),
            (false, OpKind::Put, 300, 128),
        ] {
            if into_a { &mut a } else { &mut b }.record(kind, ns, bytes);
            all.record(kind, ns, bytes);
        }
        let span = TraceEvent { kind: TraceKind::NvmeTransfer { bytes: 80 }, start: 0, dur: 67 };
        a.attribute(OpKind::Get, std::slice::from_ref(&span));
        b.attribute(OpKind::Get, std::slice::from_ref(&span));
        all.attribute(OpKind::Get, &[span, span]);
        a.merge(&b);
        assert_eq!(a, all, "cross-shard fold == recording everything into one registry");
        assert_eq!(a.total_ops(), 4);
    }

    #[test]
    fn total_breakdown_sums_every_op_class() {
        let mut r = MetricsRegistry::new();
        r.attribute(
            OpKind::Get,
            &[TraceEvent { kind: TraceKind::FlashRead { channel: 0, lun: 0 }, start: 0, dur: 10 }],
        );
        r.attribute(
            OpKind::Scan,
            &[TraceEvent { kind: TraceKind::PeJob { pe: 0, cycles: 4 }, start: 0, dur: 40 }],
        );
        let total = r.total_breakdown();
        assert_eq!(total.flash_ns, 10);
        assert_eq!(total.pe_ns, 40);
        assert_eq!(total.total(), 50);
    }

    #[test]
    fn dropped_spans_line_renders_only_when_nonzero() {
        let mut s = DeviceStats::default();
        s.metrics.record(OpKind::Get, 1_000, 80);
        let clean = format!("{s}");
        assert!(!clean.contains("dropped_spans"), "zero drops must not render: {clean}");
        s.dropped_spans = 7;
        let overflowed = format!("{s}");
        assert!(overflowed.contains("trace: dropped_spans=7 (ring overflowed)"), "{overflowed}");
    }

    #[test]
    fn fmt_ns_picks_readable_units() {
        assert_eq!(fmt_ns(0), "0 ns");
        assert_eq!(fmt_ns(9_999), "9999 ns");
        assert_eq!(fmt_ns(150_000), "150.0 us");
        assert_eq!(fmt_ns(67_000_000), "67.00 ms");
        assert_eq!(fmt_ns(5_512_000_000), "5.512 s");
    }
}
