//! Query planning: logical ops lowered into physical execution plans.
//!
//! The paper's PEs are "1..N filtering units" deployed per table, and
//! nKV dispatches every GET/SCAN either to the ARM software path or to
//! a hardware PE. This module makes that decision *explicit* and
//! *inspectable*: a [`LogicalOp`] describes what the host asked for, a
//! [`PhysicalPlan`] describes how the device will run it — which
//! predicates are pushed into PE register programming, which remain as
//! a software post-filter, and how many PE job streams a scan fans out
//! to — and [`PhysicalPlan::explain`] renders the plan for debugging.
//!
//! Lowering rules (see DESIGN.md §11):
//!
//! * every predicate lane must exist in the table's input layout;
//! * **software** plans evaluate the whole chain on the ARM;
//! * **hardware** plans push the whole chain into the PE's filtering
//!   stages and reject chains longer than the stage count (the legacy
//!   contract, unchanged);
//! * **hybrid** plans push the first `stages` predicates and keep the
//!   rest as a residual ARM post-filter over the PE's output — only
//!   legal when the PE's transformation is the identity (otherwise the
//!   residual lanes no longer exist in the output tuples);
//! * aggregates stay register-resident on the PE, so a hybrid
//!   aggregate with a residual is rejected (there is no output stream
//!   to post-filter);
//! * a filter scan on a hardware-capable backend fans out to the
//!   table's configured `parallel_pes` job streams (0 = the legacy
//!   serial dispatch).

use crate::error::{NkvError, NkvResult};
use crate::exec::ExecMode;
use ndp_pe::oracle::{FilterRule, OpTable};

/// What the host asked for, before any execution decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicalOp {
    /// Point lookup by key.
    Get { key: u64 },
    /// Batched point lookup: N keys served by one PE configuration via
    /// a key-list DMA descriptor (see `cosmos_sim::batch`).
    MultiGet { keys: Vec<u64> },
    /// Full scan with a conjunctive predicate chain.
    Scan { rules: Vec<FilterRule> },
    /// Key-range scan: `lo <= key < hi`.
    RangeScan { lo: u64, hi: u64 },
    /// Aggregate pushdown: reduce `lane` over records matching `rules`.
    ScanAggregate { rules: Vec<FilterRule>, agg: ndp_ir::AggOp, lane: u32 },
}

/// Which execution path carries the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// ARM software NDP (the paper's "SW" bars).
    Software,
    /// FPGA PEs through the generated interface (the "HW" bars).
    Hardware,
    /// PE filtering for the first `stages` predicates, ARM post-filter
    /// for the rest.
    Hybrid,
}

impl From<ExecMode> for Backend {
    fn from(mode: ExecMode) -> Self {
        match mode {
            ExecMode::Software => Backend::Software,
            ExecMode::Hardware => Backend::Hardware,
        }
    }
}

impl Backend {
    /// Stable display name (EXPLAIN renderings and cost reports).
    pub fn name(self) -> &'static str {
        match self {
            Backend::Software => "software",
            Backend::Hardware => "hardware",
            Backend::Hybrid => "hybrid",
        }
    }
}

/// What a table's executor can do — the planner's view of the device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanCaps {
    /// Chained filtering stages per PE.
    pub stages: u32,
    /// Lanes of the input tuple layout.
    pub lanes: usize,
    /// PEs attached to the table.
    pub n_pes: usize,
    /// Configured parallel scan streams (0 = serial legacy dispatch).
    pub parallel_pes: usize,
    /// Aggregation reductions the PEs were generated with.
    pub aggregates: Vec<ndp_ir::AggOp>,
    /// Whether the PE's transformation is the identity (output tuples
    /// are byte-for-byte the input tuples). Gates hybrid residuals.
    pub identity_transform: bool,
}

/// The physical operator at the root of a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhysOp {
    /// Memtable probe, then bloom-pruned index walk + one block search.
    PointLookup { key: u64 },
    /// One key-list descriptor DMA, one PE configuration, N streamed
    /// point lookups. Keys are validated against the descriptor's
    /// shape rules (non-empty, ≤ capacity, no duplicates) at lowering.
    BatchedGet { keys: Vec<u64> },
    /// Filter every data block, reconcile versions, return records.
    FilterScan,
    /// Filter every data block into a register-resident reduction.
    AggregateScan { agg: ndp_ir::AggOp, lane: u32 },
}

/// A lowered, executable plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysicalPlan {
    pub op: PhysOp,
    pub backend: Backend,
    /// Predicates pushed into PE register programming (for a software
    /// backend: the chain the ARM walk evaluates).
    pub pushed: Vec<FilterRule>,
    /// Predicates evaluated by the ARM over the PE's output stream.
    pub residual: Vec<FilterRule>,
    /// Parallel PE job streams a filter scan fans out to (0 = serial).
    pub parallel_pes: usize,
}

impl PhysicalPlan {
    /// Lower `op` for a table with capabilities `caps`. Validation
    /// errors are exactly the legacy `NkvDb::scan`/`scan_aggregate`
    /// errors so the plan path is a drop-in replacement.
    pub fn lower(
        op: &LogicalOp,
        backend: Backend,
        caps: &PlanCaps,
        table: &str,
    ) -> NkvResult<PhysicalPlan> {
        match op {
            LogicalOp::Get { key } => Ok(PhysicalPlan {
                op: PhysOp::PointLookup { key: *key },
                backend,
                pushed: Vec::new(),
                residual: Vec::new(),
                parallel_pes: 0,
            }),
            LogicalOp::MultiGet { keys } => {
                // A batch of one folds to the legacy point lookup, so
                // every serial timing/result stays byte-identical.
                if let [key] = keys[..] {
                    return Self::lower(&LogicalOp::Get { key }, backend, caps, table);
                }
                // Validate batch shape through the descriptor itself:
                // the planner rejects exactly what the device would.
                cosmos_sim::KeyListDescriptor::new(keys)
                    .map_err(|e| NkvError::Config(format!("batched GET on `{table}`: {e}")))?;
                Ok(PhysicalPlan {
                    op: PhysOp::BatchedGet { keys: keys.clone() },
                    backend,
                    pushed: Vec::new(),
                    residual: Vec::new(),
                    parallel_pes: 0,
                })
            }
            LogicalOp::Scan { rules } => Self::lower_scan(rules, backend, caps, table),
            LogicalOp::RangeScan { lo, hi } => {
                // The paper's 2-stage showcase: `lo <= key < hi` on lane 0.
                let rules = vec![
                    FilterRule { lane: 0, op_code: 4 /* ge */, value: *lo },
                    FilterRule { lane: 0, op_code: 5 /* lt */, value: *hi },
                ];
                Self::lower_scan(&rules, backend, caps, table)
            }
            LogicalOp::ScanAggregate { rules, agg, lane } => {
                if backend != Backend::Software && !caps.aggregates.contains(agg) {
                    return Err(NkvError::Config(format!(
                        "table `{table}`'s PEs were not generated with the `{}` aggregate",
                        agg.name()
                    )));
                }
                if backend != Backend::Software && rules.len() > caps.stages as usize {
                    // The reduction lives in a PE register; there is no
                    // output stream a residual could post-filter.
                    return Err(NkvError::Config(format!(
                        "predicate chain of {} rules exceeds the PE's {} filtering stage(s) \
                         and an aggregate has no output stream for a residual filter",
                        rules.len(),
                        caps.stages
                    )));
                }
                Ok(PhysicalPlan {
                    op: PhysOp::AggregateScan { agg: *agg, lane: *lane },
                    backend,
                    pushed: rules.clone(),
                    residual: Vec::new(),
                    parallel_pes: 0,
                })
            }
        }
    }

    fn lower_scan(
        rules: &[FilterRule],
        backend: Backend,
        caps: &PlanCaps,
        table: &str,
    ) -> NkvResult<PhysicalPlan> {
        for r in rules {
            if r.lane as usize >= caps.lanes {
                return Err(NkvError::InvalidLane { table: table.to_string(), lane: r.lane });
            }
        }
        let stages = caps.stages as usize;
        let (pushed, residual) = match backend {
            Backend::Software => (rules.to_vec(), Vec::new()),
            Backend::Hardware => {
                if rules.len() > stages {
                    return Err(NkvError::Config(format!(
                        "predicate chain of {} rules exceeds the PE's {} filtering stage(s)",
                        rules.len(),
                        caps.stages
                    )));
                }
                (rules.to_vec(), Vec::new())
            }
            Backend::Hybrid => {
                let cut = rules.len().min(stages);
                let (push, rest) = rules.split_at(cut);
                if !rest.is_empty() && !caps.identity_transform {
                    return Err(NkvError::Config(format!(
                        "hybrid plan needs {} residual predicate(s) but the PE's \
                         transformation is not the identity, so the residual lanes \
                         do not exist in the output tuples",
                        rest.len()
                    )));
                }
                (push.to_vec(), rest.to_vec())
            }
        };
        let parallel = if backend == Backend::Software { 0 } else { caps.parallel_pes };
        Ok(PhysicalPlan {
            op: PhysOp::FilterScan,
            backend,
            pushed,
            residual,
            parallel_pes: parallel,
        })
    }

    /// Render the plan for debugging (`repro explain`). `ops` supplies
    /// the table's operator encodings (they are per-PE-config, not
    /// global), so predicates print as `lane1 >= 2015`.
    pub fn explain(&self, table: &str, ops: &OpTable) -> String {
        let mut s = String::new();
        let rule = |r: &FilterRule| format!("lane{} {} {}", r.lane, ops.symbol(r.op_code), r.value);
        match &self.op {
            PhysOp::PointLookup { key } => {
                s.push_str(&format!("PLAN GET ON {table} (backend: {})\n", self.backend.name()));
                s.push_str("  memtable probe -> bloom-pruned index walk -> one block search\n");
                match self.backend {
                    Backend::Software => {
                        s.push_str(&format!("  ARM block search: key == {key}\n"));
                    }
                    _ => {
                        s.push_str(&format!("  pushed -> PE 0 stage: lane0 == {key}\n"));
                    }
                }
            }
            PhysOp::BatchedGet { keys } => {
                s.push_str(&format!(
                    "PLAN BATCHED-GET ON {table} (backend: {}, batch: {})\n",
                    self.backend.name(),
                    keys.len()
                ));
                s.push_str(
                    "  one key-list descriptor DMA -> shared index walk -> per-key block search\n",
                );
                match self.backend {
                    Backend::Software => {
                        s.push_str("  ARM block search per key (no PE configuration at all)\n");
                    }
                    _ => {
                        s.push_str(
                            "  pushed -> PE 0, configured once; key-list walker re-points \
                             lane0 == key per entry\n",
                        );
                    }
                }
                s.push_str("  then: per-key result stream over NVMe, in key order\n");
            }
            PhysOp::FilterScan => {
                s.push_str(&format!("PLAN SCAN ON {table} (backend: {})\n", self.backend.name()));
                if self.backend == Backend::Software {
                    s.push_str("  ARM filter pass:\n");
                } else {
                    s.push_str("  pushed -> PE filtering stages:\n");
                }
                for (i, r) in self.pushed.iter().enumerate() {
                    s.push_str(&format!("    [{i}] {}\n", rule(r)));
                }
                if self.pushed.is_empty() {
                    s.push_str("    (none: every tuple passes)\n");
                }
                if !self.residual.is_empty() {
                    s.push_str("  residual -> ARM post-filter over PE output:\n");
                    for (i, r) in self.residual.iter().enumerate() {
                        s.push_str(&format!("    [{}] {}\n", i + self.pushed.len(), rule(r)));
                    }
                }
                match self.parallel_pes {
                    0 => s.push_str("  dispatch: serial block stream (legacy)\n"),
                    n => s.push_str(&format!(
                        "  dispatch: {n} parallel PE job stream(s) over flash-channel groups, \
                         merged in (component, block) order\n"
                    )),
                }
                s.push_str("  then: version reconciliation + NVMe result transfer\n");
            }
            PhysOp::AggregateScan { agg, lane } => {
                s.push_str(&format!(
                    "PLAN SCAN-AGGREGATE ON {table} (backend: {})\n",
                    self.backend.name()
                ));
                s.push_str(&format!("  reduce: {}(lane{lane})\n", agg.name()));
                if self.backend == Backend::Software {
                    s.push_str("  ARM filter pass:\n");
                } else {
                    s.push_str("  pushed -> PE filtering stages:\n");
                }
                for (i, r) in self.pushed.iter().enumerate() {
                    s.push_str(&format!("    [{i}] {}\n", rule(r)));
                }
                if self.pushed.is_empty() {
                    s.push_str("    (none: every tuple passes)\n");
                }
                s.push_str("  then: 8-byte accumulator over NVMe\n");
            }
        }
        s
    }

    /// Legacy-compatibility constructor used by the `exec` wrappers:
    /// the whole chain goes to the primary path unvalidated, exactly
    /// like the pre-plan `exec::scan` contract (callers that bypassed
    /// `NkvDb` never got lane/stage validation there either).
    pub(crate) fn legacy_scan(rules: &[FilterRule], mode: ExecMode, parallel_pes: usize) -> Self {
        let backend = Backend::from(mode);
        PhysicalPlan {
            op: PhysOp::FilterScan,
            backend,
            pushed: rules.to_vec(),
            residual: Vec::new(),
            parallel_pes: if backend == Backend::Software { 0 } else { parallel_pes },
        }
    }

    pub(crate) fn legacy_scan_aggregate(
        rules: &[FilterRule],
        agg: ndp_ir::AggOp,
        lane: u32,
        mode: ExecMode,
    ) -> Self {
        PhysicalPlan {
            op: PhysOp::AggregateScan { agg, lane },
            backend: Backend::from(mode),
            pushed: rules.to_vec(),
            residual: Vec::new(),
            parallel_pes: 0,
        }
    }

    pub(crate) fn legacy_get(key: u64, mode: ExecMode) -> Self {
        PhysicalPlan {
            op: PhysOp::PointLookup { key },
            backend: Backend::from(mode),
            pushed: Vec::new(),
            residual: Vec::new(),
            parallel_pes: 0,
        }
    }
}

/// What executing a plan produced (see `NkvDb::execute`).
#[derive(Debug, Clone)]
pub enum PlanOutcome {
    /// A filter scan's reconciled records.
    Records { records: Vec<u8>, count: u64, report: crate::exec::SimReport },
    /// An aggregate scan's accumulator (`any` = matched at least once).
    Aggregate { value: u64, any: bool, report: crate::exec::SimReport },
    /// A point lookup's record, if found.
    Point { record: Option<Vec<u8>>, report: crate::exec::SimReport },
    /// A batched lookup's per-key outcomes, in key-list order. Each
    /// slot is independently attributed: a fault on one key's walk
    /// surfaces as that slot's typed error while the rest of the batch
    /// completes.
    Batch { results: Vec<NkvResult<Option<Vec<u8>>>>, report: crate::exec::SimReport },
}

impl PlanOutcome {
    /// The simulation report, whatever shape the outcome took (the
    /// adaptive planner reads `sim_ns` off it for latency feedback).
    pub fn report(&self) -> &crate::exec::SimReport {
        match self {
            PlanOutcome::Records { report, .. }
            | PlanOutcome::Aggregate { report, .. }
            | PlanOutcome::Point { report, .. }
            | PlanOutcome::Batch { report, .. } => report,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps(stages: u32, identity: bool, parallel: usize) -> PlanCaps {
        PlanCaps {
            stages,
            lanes: 3,
            n_pes: 4,
            parallel_pes: parallel,
            aggregates: vec![ndp_ir::AggOp::Sum],
            identity_transform: identity,
        }
    }

    fn rule(lane: u32, op_code: u32, value: u64) -> FilterRule {
        FilterRule { lane, op_code, value }
    }

    #[test]
    fn hardware_rejects_overlong_chains_hybrid_splits_them() {
        let c = caps(1, true, 0);
        let op = LogicalOp::Scan { rules: vec![rule(0, 4, 10), rule(0, 5, 20)] };
        let hw = PhysicalPlan::lower(&op, Backend::Hardware, &c, "t");
        assert!(matches!(hw, Err(NkvError::Config(_))));
        let hy = PhysicalPlan::lower(&op, Backend::Hybrid, &c, "t").unwrap();
        assert_eq!(hy.pushed.len(), 1);
        assert_eq!(hy.residual.len(), 1);
    }

    #[test]
    fn hybrid_residual_requires_identity_transform() {
        let c = caps(1, false, 0);
        let op = LogicalOp::Scan { rules: vec![rule(0, 4, 10), rule(1, 5, 20)] };
        assert!(matches!(
            PhysicalPlan::lower(&op, Backend::Hybrid, &c, "t"),
            Err(NkvError::Config(_))
        ));
        // A chain that fits the stages needs no residual and is fine.
        let op1 = LogicalOp::Scan { rules: vec![rule(0, 4, 10)] };
        let p = PhysicalPlan::lower(&op1, Backend::Hybrid, &c, "t").unwrap();
        assert!(p.residual.is_empty());
    }

    #[test]
    fn lane_validation_matches_legacy() {
        let c = caps(2, true, 0);
        let op = LogicalOp::Scan { rules: vec![rule(7, 4, 10)] };
        assert!(matches!(
            PhysicalPlan::lower(&op, Backend::Software, &c, "t"),
            Err(NkvError::InvalidLane { lane: 7, .. })
        ));
    }

    #[test]
    fn parallel_streams_only_apply_to_hardware_filter_scans() {
        let c = caps(2, true, 4);
        let op = LogicalOp::Scan { rules: vec![rule(0, 4, 10)] };
        let sw = PhysicalPlan::lower(&op, Backend::Software, &c, "t").unwrap();
        assert_eq!(sw.parallel_pes, 0);
        let hw = PhysicalPlan::lower(&op, Backend::Hardware, &c, "t").unwrap();
        assert_eq!(hw.parallel_pes, 4);
        let agg = LogicalOp::ScanAggregate {
            rules: vec![rule(0, 4, 10)],
            agg: ndp_ir::AggOp::Sum,
            lane: 1,
        };
        let ap = PhysicalPlan::lower(&agg, Backend::Hardware, &c, "t").unwrap();
        assert_eq!(ap.parallel_pes, 0);
    }

    #[test]
    fn aggregate_capability_and_stage_checks() {
        let c = caps(1, true, 0);
        let bad_agg = LogicalOp::ScanAggregate { rules: vec![], agg: ndp_ir::AggOp::Max, lane: 1 };
        assert!(matches!(
            PhysicalPlan::lower(&bad_agg, Backend::Hardware, &c, "t"),
            Err(NkvError::Config(_))
        ));
        // Software has no capability requirement.
        assert!(PhysicalPlan::lower(&bad_agg, Backend::Software, &c, "t").is_ok());
        let long = LogicalOp::ScanAggregate {
            rules: vec![rule(0, 4, 1), rule(1, 5, 2)],
            agg: ndp_ir::AggOp::Sum,
            lane: 1,
        };
        assert!(matches!(
            PhysicalPlan::lower(&long, Backend::Hybrid, &c, "t"),
            Err(NkvError::Config(_))
        ));
    }

    #[test]
    fn multi_get_lowers_to_batched_get_and_folds_singletons() {
        let c = caps(1, true, 0);
        let p = PhysicalPlan::lower(
            &LogicalOp::MultiGet { keys: vec![5, 9, 1] },
            Backend::Hardware,
            &c,
            "t",
        )
        .unwrap();
        assert_eq!(p.op, PhysOp::BatchedGet { keys: vec![5, 9, 1] });
        // Batch of one is the legacy point lookup, bit for bit.
        let one =
            PhysicalPlan::lower(&LogicalOp::MultiGet { keys: vec![5] }, Backend::Hardware, &c, "t")
                .unwrap();
        let get =
            PhysicalPlan::lower(&LogicalOp::Get { key: 5 }, Backend::Hardware, &c, "t").unwrap();
        assert_eq!(one, get);
    }

    #[test]
    fn multi_get_rejects_descriptor_shape_violations_as_config_errors() {
        let c = caps(1, true, 0);
        for keys in [vec![], vec![3, 4, 3], (0..600).collect::<Vec<u64>>()] {
            let err =
                PhysicalPlan::lower(&LogicalOp::MultiGet { keys }, Backend::Hardware, &c, "t")
                    .unwrap_err();
            assert!(matches!(err, NkvError::Config(_)), "{err:?}");
        }
    }

    #[test]
    fn range_scan_lowers_to_a_two_stage_key_chain() {
        let c = caps(2, true, 0);
        let p = PhysicalPlan::lower(
            &LogicalOp::RangeScan { lo: 100, hi: 200 },
            Backend::Hardware,
            &c,
            "t",
        )
        .unwrap();
        assert_eq!(p.pushed.len(), 2);
        assert_eq!(p.pushed[0], rule(0, 4, 100));
        assert_eq!(p.pushed[1], rule(0, 5, 200));
    }
}
