//! Device recovery: rebuild the store's state from flash after a
//! power cycle.
//!
//! nKV's native computational storage keeps all accessor state on the
//! device; everything needed to serve GET/SCAN again lives in flash:
//!
//! * a **manifest** (superblock) at a fixed physical location lists every
//!   table and the physical pages of each SST's index block;
//! * each **index block** fully describes one SST (block key ranges,
//!   data-page addresses, bloom filter bits, tombstones — see
//!   [`crate::sst::serialize_index`]).
//!
//! [`persist`] writes the manifest; [`recover`] reads it back, parses
//! every index block and reconstructs the LSM trees and the page
//! allocator watermarks. The volatile memtable (`C0`) is lost, exactly
//! like a real LSM without a write-ahead log — the device relies on the
//! host treating unflushed writes as unacknowledged (documented design
//! decision; RocksDB's WAL is out of scope for the paper's read-path
//! evaluation).
//!
//! # Power-cut atomicity
//!
//! Manifests carry a monotonically increasing **epoch** and alternate
//! between **two fixed slots** (`epoch % 2`). A persist only ever
//! overwrites the slot *not* holding the current manifest, so a power
//! cut mid-write tears at most the new slot: its CRC fails and
//! [`read_manifest`] falls back to the intact older slot. Because the
//! page allocator is a bump allocator that never reuses pages, every
//! SST the older manifest references is still readable — recovery
//! always lands on a consistent (if slightly stale) state.

use crate::error::{NkvError, NkvResult};
use crate::sst::{deserialize_index, serialize_index, SstMeta};
use crate::util::crc32c;
use cosmos_sim::{FlashArray, PhysAddr, SimNs};

/// Pages reserved per manifest slot. Two slots sit at the top of
/// channel 0 / LUN 0 (slot 0 highest). The allocator fills pages
/// bottom-up, so collision would require an essentially full device
/// (and is caught by the CRC).
pub const MANIFEST_SLOT_PAGES: u32 = 8;

/// Total pages reserved for manifests (both slots).
pub const MANIFEST_PAGES: u32 = 2 * MANIFEST_SLOT_PAGES;

/// Manifest entry for one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableManifest {
    pub name: String,
    pub record_bytes: u32,
    /// `(lsm_level, index_pages)` per SST, in recency order per level.
    pub ssts: Vec<(u32, Vec<PhysAddr>)>,
    /// True if the table allows duplicate keys (edge tables).
    pub unique_keys: bool,
}

/// The whole device manifest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Monotonically increasing persist generation; selects the slot
    /// (`epoch % 2`) and breaks ties between two valid slots (higher
    /// epoch = newer manifest wins).
    pub epoch: u64,
    pub tables: Vec<TableManifest>,
}

fn manifest_page(slot: u32, i: u32, pages_per_lun: u32) -> PhysAddr {
    PhysAddr { channel: 0, lun: 0, page: pages_per_lun - 1 - (slot * MANIFEST_SLOT_PAGES + i) }
}

/// Serialize the manifest (little-endian, CRC-terminated).
pub fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"NKVM");
    out.extend_from_slice(&2u32.to_le_bytes());
    out.extend_from_slice(&m.epoch.to_le_bytes());
    out.extend_from_slice(&(m.tables.len() as u32).to_le_bytes());
    for t in &m.tables {
        out.extend_from_slice(&(t.name.len() as u16).to_le_bytes());
        out.extend_from_slice(t.name.as_bytes());
        out.extend_from_slice(&t.record_bytes.to_le_bytes());
        out.push(u8::from(t.unique_keys));
        out.extend_from_slice(&(t.ssts.len() as u32).to_le_bytes());
        for (level, pages) in &t.ssts {
            out.extend_from_slice(&level.to_le_bytes());
            out.extend_from_slice(&(pages.len() as u16).to_le_bytes());
            for p in pages {
                out.extend_from_slice(&p.channel.to_le_bytes());
                out.extend_from_slice(&p.lun.to_le_bytes());
                out.extend_from_slice(&p.page.to_le_bytes());
            }
        }
    }
    let crc = crc32c(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    out
}

/// Parse a serialized manifest.
pub fn decode_manifest(bytes: &[u8]) -> NkvResult<Manifest> {
    let fail = || NkvError::Config("corrupt manifest".into());
    let take = |pos: &mut usize, n: usize| -> NkvResult<&[u8]> {
        let end = pos.checked_add(n).filter(|&e| e <= bytes.len()).ok_or_else(fail)?;
        let s = &bytes[*pos..end];
        *pos = end;
        Ok(s)
    };
    let u16_at = |pos: &mut usize| -> NkvResult<u16> {
        let v = crate::util::le_u16(bytes, *pos, "manifest field")?;
        *pos += 2;
        Ok(v)
    };
    let u32_at = |pos: &mut usize| -> NkvResult<u32> {
        let v = crate::util::le_u32(bytes, *pos, "manifest field")?;
        *pos += 4;
        Ok(v)
    };
    let mut pos = 0usize;
    if take(&mut pos, 4)? != b"NKVM" {
        return Err(fail());
    }
    let version = u32_at(&mut pos)?;
    // Version 1 manifests predate epochs (single-slot layout).
    let epoch = if version >= 2 {
        let e = crate::util::le_u64(bytes, pos, "manifest epoch")?;
        pos += 8;
        e
    } else {
        0
    };
    let n_tables = u32_at(&mut pos)? as usize;
    if n_tables > bytes.len() {
        return Err(fail());
    }
    let mut tables = Vec::with_capacity(n_tables);
    for _ in 0..n_tables {
        let name_len = u16_at(&mut pos)? as usize;
        let name = String::from_utf8(take(&mut pos, name_len)?.to_vec()).map_err(|_| fail())?;
        let record_bytes = u32_at(&mut pos)?;
        let unique_keys = take(&mut pos, 1)?[0] != 0;
        let n_ssts = u32_at(&mut pos)? as usize;
        if n_ssts > bytes.len() {
            return Err(fail());
        }
        let mut ssts = Vec::with_capacity(n_ssts);
        for _ in 0..n_ssts {
            let level = u32_at(&mut pos)?;
            let n_pages = u16_at(&mut pos)? as usize;
            let mut pages = Vec::with_capacity(n_pages);
            for _ in 0..n_pages {
                let channel = u16_at(&mut pos)?;
                let lun = u16_at(&mut pos)?;
                let page = u32_at(&mut pos)?;
                pages.push(PhysAddr { channel, lun, page });
            }
            ssts.push((level, pages));
        }
        tables.push(TableManifest { name, record_bytes, ssts, unique_keys });
    }
    let crc_stored = u32_at(&mut pos)?;
    if crc32c(&bytes[..pos - 4]) != crc_stored {
        return Err(fail());
    }
    Ok(Manifest { epoch, tables })
}

/// Write the manifest into the slot selected by its epoch (`epoch % 2`);
/// returns completion time. The other slot — holding the previous valid
/// manifest — is untouched, so a power cut mid-write cannot lose both.
/// Fails if the manifest outgrows one slot.
pub fn write_manifest(flash: &mut FlashArray, m: &Manifest, now: SimNs) -> NkvResult<SimNs> {
    let bytes = encode_manifest(m);
    let page_bytes = flash.config().page_bytes as usize;
    let needed = bytes.len().div_ceil(page_bytes) as u32;
    if needed > MANIFEST_SLOT_PAGES {
        return Err(NkvError::Config(format!(
            "manifest needs {needed} pages, only {MANIFEST_SLOT_PAGES} per slot"
        )));
    }
    let slot = (m.epoch % 2) as u32;
    let pages_per_lun = flash.config().pages_per_lun;
    let mut done = now;
    for i in 0..needed {
        let start = i as usize * page_bytes;
        let end = (start + page_bytes).min(bytes.len());
        let addr = manifest_page(slot, i, pages_per_lun);
        done = done.max(flash.program_page(addr, &bytes[start..end], now)?);
    }
    Ok(done)
}

/// Read one slot's manifest, or `None` if the slot holds nothing valid.
fn read_slot(flash: &mut FlashArray, slot: u32, now: SimNs) -> (Option<Manifest>, SimNs) {
    let pages_per_lun = flash.config().pages_per_lun;
    let mut bytes = Vec::new();
    let mut done = now;
    for i in 0..MANIFEST_SLOT_PAGES {
        let addr = manifest_page(slot, i, pages_per_lun);
        match flash.read_page(addr, now) {
            Ok((t, page)) => {
                done = done.max(t);
                bytes.extend_from_slice(page);
            }
            // Unwritten / unreadable tail pages end the slot; a torn or
            // corrupt slot fails the CRC below either way.
            Err(_) => break,
        }
    }
    (decode_manifest_prefix(&bytes).ok(), done)
}

/// Read the manifest back: both slots are scanned and the newest valid
/// one (highest epoch with an intact CRC) wins. Errors only if neither
/// slot holds a valid manifest.
pub fn read_manifest(flash: &mut FlashArray, now: SimNs) -> NkvResult<(Manifest, SimNs)> {
    let (m0, t0) = read_slot(flash, 0, now);
    let (m1, t1) = read_slot(flash, 1, now);
    let done = t0.max(t1);
    let best = match (m0, m1) {
        (Some(a), Some(b)) => Some(if a.epoch >= b.epoch { a } else { b }),
        (a, b) => a.or(b),
    };
    match best {
        Some(m) => Ok((m, done)),
        None => Err(NkvError::Config("no valid manifest in either slot".into())),
    }
}

/// Decode a manifest from a buffer that may carry trailing page padding.
fn decode_manifest_prefix(bytes: &[u8]) -> NkvResult<Manifest> {
    // The encoding is self-delimiting except for the final CRC; walk the
    // structure to find the true length, then verify.
    // Simpler: try decreasing lengths ending at the CRC — the structure
    // walk below mirrors decode_manifest but tolerates padding.
    // We re-use decode_manifest by scanning for the shortest valid prefix.
    // (Manifests are tiny — tens of bytes per table — so this is cheap.)
    for len in (8..=bytes.len()).rev() {
        // Fast reject: CRC check only.
        let body = &bytes[..len - 4];
        if crc32c(body) == crate::util::le_u32(bytes, len - 4, "manifest CRC")? {
            return decode_manifest(&bytes[..len]);
        }
    }
    Err(NkvError::Config("corrupt manifest".into()))
}

/// Rebuild every SST's metadata from its on-flash index block.
pub fn recover_table_ssts(
    flash: &mut FlashArray,
    t: &TableManifest,
    now: SimNs,
) -> NkvResult<(Vec<(u32, SstMeta)>, SimNs)> {
    let page_bytes = flash.config().page_bytes as usize;
    let mut out = Vec::with_capacity(t.ssts.len());
    let mut done = now;
    for (level, pages) in &t.ssts {
        let mut bytes = Vec::with_capacity(pages.len() * page_bytes);
        for &p in pages {
            let (tm, page) = flash.read_page(p, now)?;
            done = done.max(tm);
            bytes.extend_from_slice(page);
        }
        // Index blocks are CRC-delimited like the manifest.
        let meta = recover_index_prefix(&bytes)?;
        let mut meta = meta;
        meta.index_pages = pages.clone();
        out.push((*level, meta));
    }
    Ok((out, done))
}

fn recover_index_prefix(bytes: &[u8]) -> NkvResult<SstMeta> {
    for len in (8..=bytes.len()).rev() {
        let body = &bytes[..len - 4];
        if crc32c(body) == crate::util::le_u32(bytes, len - 4, "index block CRC")? {
            return deserialize_index(&bytes[..len]);
        }
    }
    Err(NkvError::Config("corrupt index block".into()))
}

/// Build the manifest entry for one table from its live metadata.
pub fn manifest_entry(
    name: &str,
    record_bytes: usize,
    unique_keys: bool,
    levels: &[Vec<SstMeta>],
) -> TableManifest {
    let mut ssts = Vec::new();
    for (level, list) in levels.iter().enumerate() {
        for sst in list {
            ssts.push((level as u32, sst.index_pages.clone()));
        }
    }
    TableManifest { name: name.to_string(), record_bytes: record_bytes as u32, ssts, unique_keys }
}

/// Round-trip sanity used by tests: serialize + recover one SST's index.
pub fn index_round_trip(meta: &SstMeta) -> NkvResult<SstMeta> {
    recover_index_prefix(&serialize_index(meta))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosmos_sim::FlashConfig;

    fn sample_manifest() -> Manifest {
        Manifest {
            epoch: 5,
            tables: vec![
                TableManifest {
                    name: "papers".into(),
                    record_bytes: 80,
                    unique_keys: true,
                    ssts: vec![
                        (0, vec![PhysAddr { channel: 1, lun: 0, page: 7 }]),
                        (
                            1,
                            vec![
                                PhysAddr { channel: 2, lun: 3, page: 9 },
                                PhysAddr { channel: 2, lun: 2, page: 9 },
                            ],
                        ),
                    ],
                },
                TableManifest {
                    name: "refs".into(),
                    record_bytes: 20,
                    unique_keys: false,
                    ssts: vec![],
                },
            ],
        }
    }

    #[test]
    fn manifest_encode_decode_round_trips() {
        let m = sample_manifest();
        let bytes = encode_manifest(&m);
        assert_eq!(decode_manifest(&bytes).unwrap(), m);
    }

    #[test]
    fn manifest_rejects_corruption() {
        let mut bytes = encode_manifest(&sample_manifest());
        bytes[10] ^= 0xFF;
        assert!(decode_manifest(&bytes).is_err());
        assert!(decode_manifest(b"NOPE").is_err());
        assert!(decode_manifest(&[]).is_err());
    }

    #[test]
    fn manifest_flash_round_trip_with_padding() {
        let mut flash = FlashArray::new(FlashConfig::default());
        let m = sample_manifest();
        write_manifest(&mut flash, &m, 0).unwrap();
        let (back, t) = read_manifest(&mut flash, 1_000_000).unwrap();
        assert_eq!(back, m);
        assert!(t > 1_000_000);
    }

    #[test]
    fn empty_manifest_round_trips() {
        let mut flash = FlashArray::new(FlashConfig::default());
        write_manifest(&mut flash, &Manifest::default(), 0).unwrap();
        let (back, _) = read_manifest(&mut flash, 0).unwrap();
        assert_eq!(back, Manifest::default());
    }

    #[test]
    fn missing_manifest_is_an_error() {
        let mut flash = FlashArray::new(FlashConfig::default());
        assert!(read_manifest(&mut flash, 0).is_err());
    }

    #[test]
    fn manifest_pages_sit_at_the_top_of_lun0() {
        let cfg = FlashConfig::default();
        let p = manifest_page(0, 0, cfg.pages_per_lun);
        assert_eq!(p, PhysAddr { channel: 0, lun: 0, page: cfg.pages_per_lun - 1 });
        let q = manifest_page(1, 0, cfg.pages_per_lun);
        assert_eq!(
            q,
            PhysAddr { channel: 0, lun: 0, page: cfg.pages_per_lun - 1 - MANIFEST_SLOT_PAGES }
        );
    }

    #[test]
    fn successive_epochs_alternate_slots_and_newest_wins() {
        let mut flash = FlashArray::new(FlashConfig::default());
        let mut m = sample_manifest();
        for epoch in 1..=4u64 {
            m.epoch = epoch;
            write_manifest(&mut flash, &m, 0).unwrap();
            let (back, _) = read_manifest(&mut flash, 0).unwrap();
            assert_eq!(back.epoch, epoch, "newest epoch must win");
        }
        // Both slots are populated (epochs 3 and 4 live side by side).
        let cfg = FlashConfig::default();
        for slot in 0..2 {
            assert!(flash.read_page(manifest_page(slot, 0, cfg.pages_per_lun), 0).is_ok());
        }
    }

    #[test]
    fn torn_newer_slot_falls_back_to_older_epoch() {
        let mut flash = FlashArray::new(FlashConfig::default());
        let mut m = sample_manifest();
        m.epoch = 1;
        write_manifest(&mut flash, &m, 0).unwrap();
        m.epoch = 2;
        write_manifest(&mut flash, &m, 0).unwrap();
        // Tear epoch 2's slot (slot 0): flip a byte in its first page.
        let cfg = FlashConfig::default();
        let addr = manifest_page(0, 0, cfg.pages_per_lun);
        let mut torn = flash.read_page(addr, 0).unwrap().1.to_vec();
        torn[6] ^= 0xFF;
        flash.program_page(addr, &torn, 0).unwrap();
        let (back, _) = read_manifest(&mut flash, 0).unwrap();
        assert_eq!(back.epoch, 1, "CRC failure must fall back to the intact slot");
    }

    #[test]
    fn v1_manifest_without_epoch_still_decodes() {
        // Hand-roll a version-1 header (no epoch field, empty table list).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"NKVM");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        let crc = crc32c(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        let m = decode_manifest(&bytes).unwrap();
        assert_eq!(m.epoch, 0);
        assert!(m.tables.is_empty());
    }
}
