//! Cost-based adaptive tier selection (DESIGN.md §16).
//!
//! The planner's three execution tiers — Software (ARM cores), Hardware
//! (generated PEs) and Hybrid (pushdown prefix + ARM residual) — all
//! return byte-identical results; they differ only in simulated time.
//! This module prices a logical operation on each tier *before* running
//! it, using the same timing constants the DES charges afterwards
//! ([`cosmos_sim::timing`]), so [`crate::db::NkvDb::choose_backend`] can
//! pick the cheapest feasible tier per query.
//!
//! The model is deliberately first-order: per-op firmware tax, per-block
//! PE configuration tax, flash streaming bandwidth discounted by the
//! DRAM-cache hit rate, and ARM per-byte filter cost. Two mechanisms
//! keep it honest without sacrificing determinism:
//!
//! * **Promotion (JIT-style tiering).** The first [`PROMOTE_AFTER`]
//!   sightings of an op class use a *cold* hardware estimate that
//!   charges un-overlapped flash page reads per block, so one-off and
//!   tiny queries stay on the ARM path. Once the class is hot, the warm
//!   (pipelined) estimate applies and flash-heavy scans flip SW → HW.
//! * **Feedback.** Observed per-(class, tier) latencies fold into an
//!   EWMA that is blended 50/50 with the analytic estimate, so a tier
//!   that consistently under- or over-performs its model is re-costed.
//!
//! Both mechanisms are functions of the op sequence alone — no wall
//! clock, no randomness — so a fixed seed still yields a fixed trace.

use crate::plan::{Backend, LogicalOp};
use cosmos_sim::timing::{
    cfg_overhead_ns, ARM_BLOCK_SEARCH_NS, ARM_FILTER_PS_PER_BYTE, ARM_MEMTABLE_PROBE_NS,
    ARM_SW_BLOCK_OVERHEAD_NS, BATCH_KEY_CFG_READS, BATCH_KEY_CFG_WRITES, FIRMWARE_OP_OVERHEAD_NS,
    FLASH_AGGREGATE_BW, FLASH_PAGE_BYTES, FLASH_PAGE_READ_NS, OURS_CFG_READS, OURS_CFG_WRITES,
    PL_CLK_NS,
};

/// Sightings of an op class before its hardware estimate switches from
/// the cold (un-overlapped flash) model to the warm (pipelined) model.
pub const PROMOTE_AFTER: u64 = 3;

/// Weight of a new observation when folding into the per-tier EWMA.
const EWMA_ALPHA: f64 = 0.3;

/// Blend between the analytic estimate and the observed EWMA once at
/// least one observation exists for a (class, tier) pair.
const FEEDBACK_BLEND: f64 = 0.5;

/// Coarse shape classes the adaptive planner keys its feedback on.
/// Range scans are scans; aggregates are priced separately because only
/// a 64-bit result crosses the interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Point and batched lookups ([`LogicalOp::Get`]/[`LogicalOp::MultiGet`]).
    Get,
    /// Full and range scans returning records.
    Scan,
    /// Scans reduced on-device to a single aggregate.
    Aggregate,
}

impl OpClass {
    /// Classify a logical operation.
    pub fn of(op: &LogicalOp) -> Self {
        match op {
            LogicalOp::Get { .. } | LogicalOp::MultiGet { .. } => OpClass::Get,
            LogicalOp::Scan { .. } | LogicalOp::RangeScan { .. } => OpClass::Scan,
            LogicalOp::ScanAggregate { .. } => OpClass::Aggregate,
        }
    }

    /// Stable display name (used by EXPLAIN).
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Get => "get",
            OpClass::Scan => "scan",
            OpClass::Aggregate => "aggregate",
        }
    }

    fn index(self) -> usize {
        match self {
            OpClass::Get => 0,
            OpClass::Scan => 1,
            OpClass::Aggregate => 2,
        }
    }
}

fn backend_index(b: Backend) -> usize {
    match b {
        Backend::Software => 0,
        Backend::Hardware => 1,
        Backend::Hybrid => 2,
    }
}

/// Table-shape inputs the cost model prices against, captured from the
/// LSM tree and platform at planning time.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CostInputs {
    /// Flash-resident data blocks the op may touch.
    pub flash_blocks: u64,
    /// Flash-resident data bytes behind those blocks.
    pub flash_bytes: u64,
    /// Live memtable entries (served without touching flash).
    pub memtable_records: u64,
    /// Fixed record width of the table.
    pub record_bytes: u64,
    /// DRAM block-cache hit rate (0.0 while the cache is off or cold).
    pub cache_hit_rate: f64,
    /// Keys in the lookup (1 for a point GET, N for a batch).
    pub batch_keys: u64,
}

/// One tier's price. `cost_ns` is `None` when the op does not lower on
/// that tier (e.g. a predicate chain deeper than the PE pipeline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierCost {
    pub backend: Backend,
    pub cost_ns: Option<f64>,
}

/// The adaptive planner's decision record: what was priced, what was
/// chosen, and why. Rendered by `EXPLAIN` and returned alongside every
/// adaptively executed op.
#[derive(Debug, Clone, PartialEq)]
pub struct CostReport {
    /// Shape class the feedback state was keyed on.
    pub class: OpClass,
    /// The winning tier (cheapest feasible estimate; ties break toward
    /// the earlier entry in Software → Hardware → Hybrid order).
    pub chosen: Backend,
    /// Per-tier estimates in candidate order.
    pub tiers: [TierCost; 3],
    /// Whether the class had crossed [`PROMOTE_AFTER`] sightings (warm
    /// hardware model) when this decision was made.
    pub hot: bool,
    /// Sightings of this class before this decision.
    pub seen: u64,
    /// Inputs the estimates were computed from.
    pub inputs: CostInputs,
}

impl CostReport {
    /// Multi-line rendering appended to `EXPLAIN` output. Stable format
    /// (pinned by bench snapshot tests):
    ///
    /// ```text
    ///   cost: software 1.234 ms, hardware 0.456 ms, hybrid n/a
    ///   adaptive: chose hardware (scan hot after 5 sightings)
    /// ```
    pub fn render(&self) -> String {
        let mut line = String::from("  cost:");
        for (i, t) in self.tiers.iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            match t.cost_ns {
                Some(ns) => {
                    line.push_str(&format!(" {} {:.3} ms", t.backend.name(), ns / 1.0e6));
                }
                None => line.push_str(&format!(" {} n/a", t.backend.name())),
            }
        }
        let heat = if self.hot { "hot" } else { "cold" };
        format!(
            "{line}\n  adaptive: chose {} ({} {} after {} sighting{})\n",
            self.chosen.name(),
            self.class.name(),
            heat,
            self.seen,
            if self.seen == 1 { "" } else { "s" },
        )
    }
}

/// Per-table adaptive state: sighting counters per op class and an
/// observed-latency EWMA per (class, tier). Purely a function of the
/// operations executed against the table, so runs stay deterministic.
#[derive(Debug, Clone, Default)]
pub struct AdaptState {
    seen: [u64; 3],
    ewma_ns: [[Option<f64>; 3]; 3],
}

impl AdaptState {
    /// Sightings of `class` so far.
    pub fn seen(&self, class: OpClass) -> u64 {
        self.seen[class.index()]
    }

    /// Whether `class` has crossed the promotion threshold.
    pub fn hot(&self, class: OpClass) -> bool {
        self.seen(class) >= PROMOTE_AFTER
    }

    /// Record one adaptively executed op: bump the class's sighting
    /// counter and fold the observed latency into the tier's EWMA.
    pub fn record(&mut self, class: OpClass, backend: Backend, observed_ns: u64) {
        self.seen[class.index()] += 1;
        let slot = &mut self.ewma_ns[class.index()][backend_index(backend)];
        let obs = observed_ns as f64;
        *slot = Some(match *slot {
            Some(prev) => (1.0 - EWMA_ALPHA) * prev + EWMA_ALPHA * obs,
            None => obs,
        });
    }

    /// The model estimate for (class, tier), blended with the observed
    /// EWMA when one exists. Cold classes trust the analytic model
    /// alone — early observations are taken on cold caches and would
    /// defeat the promotion brake by making every alternative tier look
    /// cheap relative to the first (slow) sightings.
    fn blended(&self, class: OpClass, backend: Backend, model_ns: f64) -> f64 {
        if !self.hot(class) {
            return model_ns;
        }
        match self.ewma_ns[class.index()][backend_index(backend)] {
            Some(obs) => (1.0 - FEEDBACK_BLEND) * model_ns + FEEDBACK_BLEND * obs,
            None => model_ns,
        }
    }
}

/// Per-block PE configuration tax of the generated accelerators
/// (register writes + DONE poll for each dispatched block).
fn hw_block_cfg_ns() -> f64 {
    cfg_overhead_ns(OURS_CFG_WRITES, OURS_CFG_READS) as f64
}

/// Nanoseconds to stream one byte off the flash array at aggregate
/// channel bandwidth.
fn flash_ns_per_byte() -> f64 {
    1.0e9 / FLASH_AGGREGATE_BW
}

/// ARM software filter cost for `bytes` of records.
fn arm_filter_ns(bytes: u64) -> f64 {
    bytes as f64 * ARM_FILTER_PS_PER_BYTE as f64 / 1000.0
}

/// Analytic per-tier estimate (before feedback blending). Returns the
/// model cost in nanoseconds.
fn model_ns(class: OpClass, backend: Backend, inputs: &CostInputs, hot: bool) -> f64 {
    let blocks = inputs.flash_blocks as f64;
    let bytes = inputs.flash_bytes as f64;
    let hit = inputs.cache_hit_rate.clamp(0.0, 1.0);
    let base = FIRMWARE_OP_OVERHEAD_NS as f64;
    match class {
        OpClass::Get => {
            let keys = inputs.batch_keys.max(1) as f64;
            // Common walk: memtable probe, then (bloom-pruned) index
            // descent; approximate one index-page visit per key.
            let walk = ARM_MEMTABLE_PROBE_NS as f64
                + if inputs.flash_blocks > 0 {
                    FLASH_PAGE_READ_NS as f64 * (1.0 - hit)
                } else {
                    0.0
                };
            // Per-key tail: ARM binary search vs PE filter of one block.
            let block_bytes = if inputs.flash_blocks > 0 { bytes / blocks } else { 0.0 };
            let per_key = match backend {
                Backend::Software => ARM_BLOCK_SEARCH_NS as f64,
                Backend::Hardware | Backend::Hybrid => {
                    let cfg = if keys > 1.0 {
                        // Batched keys ride one descriptor: one full
                        // config plus a per-key key-slot write.
                        cfg_overhead_ns(BATCH_KEY_CFG_WRITES, BATCH_KEY_CFG_READS) as f64
                            + hw_block_cfg_ns() / keys
                    } else {
                        hw_block_cfg_ns()
                    };
                    cfg + block_bytes / inputs.record_bytes.max(1) as f64 * PL_CLK_NS as f64
                }
            };
            base + keys * (walk + per_key)
        }
        OpClass::Scan | OpClass::Aggregate => {
            // Memtable entries are filtered on the ARM on every tier.
            let memtable_ns = arm_filter_ns(inputs.memtable_records * inputs.record_bytes);
            let scan = match backend {
                Backend::Software => {
                    blocks * ARM_SW_BLOCK_OVERHEAD_NS as f64 + arm_filter_ns(inputs.flash_bytes)
                }
                Backend::Hardware | Backend::Hybrid => {
                    // Warm: flash streaming overlaps PE filtering; the
                    // pipeline runs at the slower of the two rates, and
                    // cache hits discount the flash leg.
                    let stream_flash = bytes * (1.0 - hit) * flash_ns_per_byte();
                    let tuples = bytes / inputs.record_bytes.max(1) as f64;
                    let stream_pe = tuples * PL_CLK_NS as f64;
                    let mut hw = blocks * hw_block_cfg_ns() + stream_flash.max(stream_pe);
                    if !hot {
                        // Cold: assume no read-ahead overlap — every
                        // block pays its page reads serially. This is
                        // the promotion brake that keeps one-off scans
                        // on the ARM path.
                        let pages_per_block = if inputs.flash_blocks > 0 {
                            (bytes / blocks / f64::from(FLASH_PAGE_BYTES)).ceil()
                        } else {
                            0.0
                        };
                        hw += blocks * pages_per_block * FLASH_PAGE_READ_NS as f64;
                    }
                    if backend == Backend::Hybrid && class == OpClass::Scan {
                        // The ARM residual re-touches the pushed-down
                        // survivors; without selectivity statistics,
                        // charge a quarter of the software filter cost.
                        hw += 0.25 * arm_filter_ns(inputs.flash_bytes);
                    }
                    hw
                }
            };
            base + memtable_ns + scan
        }
    }
}

/// Price `op` on every tier and pick the cheapest feasible one.
///
/// `feasible` reports whether the op lowers on a tier at all (the
/// caller consults the real planner, so infeasibility here matches
/// lowering errors exactly). Ties break toward the earlier candidate in
/// Software → Hardware → Hybrid order, which keeps the choice stable
/// under floating-point equality.
pub fn choose(
    state: &AdaptState,
    op: &LogicalOp,
    inputs: CostInputs,
    feasible: impl Fn(Backend) -> bool,
) -> CostReport {
    let class = OpClass::of(op);
    let hot = state.hot(class);
    let candidates = [Backend::Software, Backend::Hardware, Backend::Hybrid];
    let mut tiers = [TierCost { backend: Backend::Software, cost_ns: None }; 3];
    let mut chosen = Backend::Software;
    let mut best: Option<f64> = None;
    for (i, b) in candidates.into_iter().enumerate() {
        let cost = if feasible(b) {
            Some(state.blended(class, b, model_ns(class, b, &inputs, hot)))
        } else {
            None
        };
        tiers[i] = TierCost { backend: b, cost_ns: cost };
        if let Some(c) = cost {
            if best.is_none_or(|b0| c < b0) {
                best = Some(c);
                chosen = b;
            }
        }
    }
    CostReport { class, chosen, tiers, hot, seen: state.seen(class), inputs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan_op() -> LogicalOp {
        LogicalOp::Scan { rules: vec![] }
    }

    fn flash_heavy() -> CostInputs {
        CostInputs {
            flash_blocks: 32,
            flash_bytes: 32 * 32 * 1024,
            memtable_records: 10,
            record_bytes: 88,
            cache_hit_rate: 0.0,
            batch_keys: 1,
        }
    }

    #[test]
    fn cold_scans_stay_on_the_arm_path() {
        let state = AdaptState::default();
        let r = choose(&state, &scan_op(), flash_heavy(), |_| true);
        assert!(!r.hot);
        assert_eq!(r.chosen, Backend::Software, "cold estimate must brake promotion: {r:?}");
    }

    #[test]
    fn hot_flash_heavy_scans_promote_to_hardware() {
        let mut state = AdaptState::default();
        for _ in 0..PROMOTE_AFTER {
            state.record(OpClass::Scan, Backend::Software, 5_000_000);
        }
        let r = choose(&state, &scan_op(), flash_heavy(), |_| true);
        assert!(r.hot);
        assert_eq!(r.chosen, Backend::Hardware, "warm estimate must promote: {r:?}");
    }

    #[test]
    fn memtable_only_scans_never_promote() {
        let mut state = AdaptState::default();
        for _ in 0..10 {
            state.record(OpClass::Scan, Backend::Software, 10_000);
        }
        let inputs = CostInputs {
            flash_blocks: 0,
            flash_bytes: 0,
            memtable_records: 100,
            record_bytes: 88,
            cache_hit_rate: 0.0,
            batch_keys: 1,
        };
        let r = choose(&state, &scan_op(), inputs, |_| true);
        assert_eq!(r.chosen, Backend::Software);
    }

    #[test]
    fn narrow_record_gets_prefer_software() {
        // 20-byte records pack 1638 tuples per 32 KiB block: streaming
        // them through the PE plus the per-GET config tax (Fig. 7(a))
        // loses to the ARM's fixed binary search. Wide records can tip
        // the other way — the DES itself pins the GET HW/SW ratio only
        // to "near 1" (`exec::tests::get_hw_does_not_profit_over_sw`).
        let inputs = CostInputs {
            flash_blocks: 32,
            flash_bytes: 32 * 32 * 1024,
            memtable_records: 10,
            record_bytes: 20,
            cache_hit_rate: 0.0,
            batch_keys: 1,
        };
        let r = choose(&AdaptState::default(), &LogicalOp::Get { key: 7 }, inputs, |_| true);
        assert_eq!(r.chosen, Backend::Software, "{r:?}");
    }

    #[test]
    fn infeasible_tiers_are_priced_as_n_a() {
        let state = AdaptState::default();
        let r = choose(&state, &scan_op(), flash_heavy(), |b| b == Backend::Hybrid);
        assert_eq!(r.chosen, Backend::Hybrid);
        assert!(r.tiers[0].cost_ns.is_none() && r.tiers[1].cost_ns.is_none());
        assert!(r.render().contains("software n/a"));
    }

    #[test]
    fn feedback_rewrites_a_misleading_model() {
        let mut state = AdaptState::default();
        for _ in 0..PROMOTE_AFTER {
            state.record(OpClass::Scan, Backend::Software, 1);
        }
        // Observed software latencies near zero: even though the model
        // says hardware wins on this shape, the blend keeps software.
        let r = choose(&state, &scan_op(), flash_heavy(), |_| true);
        assert_eq!(r.chosen, Backend::Software, "{r:?}");
    }

    #[test]
    fn render_is_stable() {
        let state = AdaptState::default();
        let r = choose(&state, &scan_op(), flash_heavy(), |_| true);
        let text = r.render();
        assert!(text.starts_with("  cost: software "), "{text}");
        assert!(text.contains("hardware "), "{text}");
        assert!(text.contains("adaptive: chose software (scan cold after 0 sightings)"), "{text}");
    }
}
