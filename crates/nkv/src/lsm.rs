//! The LSM tree: components `C0..Ck` over flash-resident SSTs.
//!
//! Mirrors the paper's description (Sec. III-A):
//!
//! * all writes go to the memtable (`C0`);
//! * when `C0` reaches its size threshold it is **flushed** into a new
//!   SST of `C1` *without compaction* ("for performance, no compaction
//!   takes place during the flush"), so `C1` holds multiple, possibly
//!   overlapping SSTs and several versions of one key may coexist;
//! * background **compaction** merges a level into the next, purging
//!   outdated pairs and (at the bottom level) tombstones;
//! * GET therefore probes the memtable, *every* SST of `C1`
//!   (newest-first), and one SST per deeper level.

use crate::error::{NkvError, NkvResult};
use crate::memtable::{Entry, MemTable};
use crate::placement::PageAllocator;
use crate::sst::{read_block, serialize_index, SstBuilder, SstMeta};
use cosmos_sim::{FlashArray, PhysAddr, SimNs};

/// Tuning knobs of one LSM tree.
#[derive(Debug, Clone)]
pub struct LsmConfig {
    /// Memtable flush threshold in bytes.
    pub memtable_bytes: usize,
    /// Data block size (the paper's 32 KiB processing granularity).
    pub block_bytes: usize,
    /// Maximum SST count in `C1` before compaction into `C2`.
    pub c1_sst_limit: usize,
    /// Size ratio between consecutive levels.
    pub level_fanout: usize,
    /// Maximum number of persistent levels (`C1..Ck`).
    pub max_levels: usize,
}

impl Default for LsmConfig {
    fn default() -> Self {
        Self {
            memtable_bytes: 4 << 20,
            block_bytes: 32 * 1024,
            c1_sst_limit: 4,
            level_fanout: 10,
            max_levels: 7,
        }
    }
}

/// One LSM tree (one table / column family).
pub struct LsmTree {
    table: String,
    record_bytes: usize,
    cfg: LsmConfig,
    memtable: MemTable,
    /// `levels[0]` = `C1` (newest SST first); deeper levels hold
    /// non-overlapping runs sorted by key range.
    levels: Vec<Vec<SstMeta>>,
    next_sst_id: u64,
    seed: u64,
    /// SST ids retired since the last [`Self::take_retired`] drain:
    /// compaction inputs whose pages may still sit in the device block
    /// cache. SSTs are immutable and the bump allocator never reuses
    /// pages, so retirement is the only way block *content* goes stale.
    retired: Vec<u64>,
}

impl LsmTree {
    /// Create an empty tree.
    pub fn new(table: &str, record_bytes: usize, cfg: LsmConfig, seed: u64) -> Self {
        let max_levels = cfg.max_levels;
        Self {
            table: table.to_string(),
            record_bytes,
            cfg,
            memtable: MemTable::new(seed),
            levels: vec![Vec::new(); max_levels],
            next_sst_id: 1,
            seed,
            retired: Vec::new(),
        }
    }

    /// Fixed record size of this table.
    pub fn record_bytes(&self) -> usize {
        self.record_bytes
    }

    /// Data block size.
    pub fn block_bytes(&self) -> usize {
        self.cfg.block_bytes
    }

    /// The in-memory component.
    pub fn memtable(&self) -> &MemTable {
        &self.memtable
    }

    /// Insert or update a record (key = first 8 bytes, validated by the
    /// caller-facing layer).
    pub fn put(&mut self, key: u64, record: Vec<u8>) {
        self.memtable.put(key, record);
    }

    /// Delete a key (tombstone).
    pub fn delete(&mut self, key: u64) {
        self.memtable.delete(key);
    }

    /// Should the memtable be flushed?
    pub fn should_flush(&self) -> bool {
        self.memtable.approximate_bytes() >= self.cfg.memtable_bytes
    }

    /// Should `level` be compacted into `level + 1`?
    pub fn should_compact(&self, level: usize) -> bool {
        if level == 0 {
            self.levels[0].len() > self.cfg.c1_sst_limit
        } else if level + 1 < self.levels.len() {
            let limit = self.cfg.c1_sst_limit * self.cfg.level_fanout.pow(level as u32);
            self.levels[level].len() > limit
        } else {
            false
        }
    }

    /// Flush `C0` into a fresh `C1` SST (no compaction, per the paper).
    /// Returns the completion time; no-op on an empty memtable.
    pub fn flush(
        &mut self,
        flash: &mut FlashArray,
        alloc: &mut PageAllocator,
        now: SimNs,
    ) -> NkvResult<SimNs> {
        if self.memtable.is_empty() {
            return Ok(now);
        }
        let id = self.next_sst_id;
        self.next_sst_id += 1;
        let mut b = SstBuilder::new(id, 1, self.record_bytes, self.cfg.block_bytes, &self.table);
        for (key, entry) in self.memtable.iter() {
            match entry {
                Entry::Value(rec) => b.add_record(key, rec)?,
                Entry::Tombstone => b.add_tombstone(key),
            }
        }
        let (meta, done) = b.finish(flash, alloc, now)?;
        self.levels[0].insert(0, meta); // newest first
        self.memtable = MemTable::new(self.seed ^ id);
        Ok(done)
    }

    /// Compact `level` into `level + 1`: k-way merge with newest-wins
    /// semantics; tombstones are purged when the output is the bottom
    /// populated level. Returns the completion time.
    pub fn compact(
        &mut self,
        flash: &mut FlashArray,
        alloc: &mut PageAllocator,
        level: usize,
        now: SimNs,
    ) -> NkvResult<SimNs> {
        assert!(level + 1 < self.levels.len(), "cannot compact the bottom level");
        if self.levels[level].is_empty() {
            return Ok(now);
        }
        // Inputs: all SSTs of `level` (priority = recency order) plus all
        // SSTs of `level + 1` (older than anything above).
        let upper: Vec<SstMeta> = std::mem::take(&mut self.levels[level]);
        let lower: Vec<SstMeta> = std::mem::take(&mut self.levels[level + 1]);
        self.retired.extend(upper.iter().chain(lower.iter()).map(|s| s.id));
        let bottom = self.levels[level + 2..].iter().all(Vec::is_empty);

        // Materialize per-source entry streams (records + tombstones).
        let mut sources: Vec<Vec<(u64, Option<Vec<u8>>)>> = Vec::new();
        let mut read_done = now;
        for sst in upper.iter().chain(lower.iter()) {
            let (t, entries) = load_entries(flash, sst, now)?;
            read_done = read_done.max(t);
            sources.push(entries);
        }

        // K-way merge, lower source index = newer version wins.
        let mut cursors = vec![0usize; sources.len()];
        let merged_cap: usize = sources.iter().map(Vec::len).sum();
        let mut merged: Vec<(u64, Option<Vec<u8>>)> = Vec::with_capacity(merged_cap);
        loop {
            let mut best: Option<(u64, usize)> = None;
            for (i, src) in sources.iter().enumerate() {
                if let Some(&(k, _)) = src.get(cursors[i]) {
                    best = match best {
                        None => Some((k, i)),
                        Some((bk, _)) if k < bk => Some((k, i)),
                        // Equal keys: keep the earlier (newer) source.
                        Some((bk, bi)) if k == bk && i < bi => Some((k, bi.min(i))),
                        keep => keep,
                    };
                }
            }
            let Some((key, winner)) = best else { break };
            for (i, src) in sources.iter().enumerate() {
                if src.get(cursors[i]).is_some_and(|&(k, _)| k == key) {
                    if i == winner {
                        let (_, entry) = &src[cursors[i]];
                        merged.push((key, entry.clone()));
                    }
                    cursors[i] += 1;
                }
            }
        }

        // Emit the merged run, splitting into bounded SSTs.
        let out_level = level + 1;
        let max_records_per_sst = (self.cfg.block_bytes / self.record_bytes).max(1) * 64;
        let mut out_ssts = Vec::new();
        let mut builder: Option<SstBuilder> = None;
        let mut in_current = 0usize;
        let mut done = read_done;
        for (key, entry) in merged {
            match entry {
                Some(rec) => {
                    let b = builder.get_or_insert_with(|| {
                        let id = self.next_sst_id;
                        self.next_sst_id += 1;
                        SstBuilder::new(
                            id,
                            out_level + 1, // placement level (1-based)
                            self.record_bytes,
                            self.cfg.block_bytes,
                            &self.table,
                        )
                    });
                    b.add_record(key, &rec)?;
                    in_current += 1;
                }
                None => {
                    if !bottom {
                        let b = builder.get_or_insert_with(|| {
                            let id = self.next_sst_id;
                            self.next_sst_id += 1;
                            SstBuilder::new(
                                id,
                                out_level + 1,
                                self.record_bytes,
                                self.cfg.block_bytes,
                                &self.table,
                            )
                        });
                        b.add_tombstone(key);
                        in_current += 1;
                    }
                    // At the bottom level tombstones are purged.
                }
            }
            if in_current >= max_records_per_sst {
                // `in_current > 0` implies a builder was just inserted
                // above; losing it here is an internal invariant break,
                // surfaced as a typed error rather than a panic mid-
                // compaction.
                let b = builder.take().ok_or_else(|| {
                    NkvError::Config(format!(
                        "compaction of `{}` L{level} lost its SST builder mid-merge",
                        self.table
                    ))
                })?;
                let (meta, t) = b.finish(flash, alloc, read_done)?;
                done = done.max(t);
                out_ssts.push(meta);
                in_current = 0;
            }
        }
        if let Some(b) = builder {
            let (meta, t) = b.finish(flash, alloc, read_done)?;
            done = done.max(t);
            out_ssts.push(meta);
        }
        self.levels[out_level] = out_ssts;
        Ok(done)
    }

    /// Per-level SST metadata (read-only view for persistence).
    pub fn levels(&self) -> &[Vec<SstMeta>] {
        &self.levels
    }

    /// Drain the SST ids retired by compactions since the last drain.
    /// The caller (the DB maintenance loop) evicts them from the device
    /// block cache; the list is empty when nothing was retired.
    pub fn take_retired(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.retired)
    }

    /// Rebuild a tree from recovered SST metadata (`(level, meta)` pairs
    /// in recency order per level; the memtable starts empty — volatile
    /// state does not survive a power cycle).
    pub fn from_recovered(
        table: &str,
        record_bytes: usize,
        cfg: LsmConfig,
        seed: u64,
        recovered: Vec<(u32, SstMeta)>,
    ) -> Self {
        let mut tree = Self::new(table, record_bytes, cfg, seed);
        let mut max_id = 0;
        for (level, meta) in recovered {
            max_id = max_id.max(meta.id);
            let level = (level as usize).min(tree.levels.len() - 1);
            tree.levels[level].push(meta);
        }
        tree.next_sst_id = max_id + 1;
        tree
    }

    /// Install a bulk-loaded SST directly into `C2` (sorted ingest path;
    /// the caller guarantees keys do not overlap previously installed
    /// bulk SSTs, which the strictly-ascending builder enforces within
    /// one load).
    pub fn install_bulk_sst(&mut self, meta: SstMeta) {
        self.levels[1].push(meta);
    }

    /// Memtable lookup.
    pub fn memtable_get(&self, key: u64) -> Option<&Entry> {
        self.memtable.get(key)
    }

    /// SSTs a GET for `key` must consult, in recency order: every
    /// matching `C1` SST (newest first), then at most one per deeper
    /// level.
    pub fn candidate_ssts(&self, key: u64) -> Vec<&SstMeta> {
        let mut out = Vec::new();
        for sst in &self.levels[0] {
            if key >= sst.min_key && key <= sst.max_key {
                out.push(sst);
            }
        }
        for level in &self.levels[1..] {
            if let Some(sst) = level.iter().find(|s| key >= s.min_key && key <= s.max_key) {
                out.push(sst);
            }
        }
        out
    }

    /// All SSTs in recency order (for SCAN).
    pub fn all_ssts(&self) -> Vec<&SstMeta> {
        let mut out: Vec<&SstMeta> = self.levels[0].iter().collect();
        for level in &self.levels[1..] {
            out.extend(level.iter());
        }
        out
    }

    /// SSTs strictly newer than `rank` in the recency order of
    /// [`Self::all_ssts`] (used by the scan shadow check).
    pub fn ssts_newer_than(&self, rank: usize) -> Vec<&SstMeta> {
        self.all_ssts().into_iter().take(rank).collect()
    }

    /// Number of SSTs per level (diagnostics).
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(Vec::len).collect()
    }

    /// Total records across all SSTs (including shadowed versions).
    pub fn persistent_records(&self) -> u64 {
        self.levels.iter().flatten().map(|s| s.n_records).sum()
    }

    /// True if any live SST references physical page `addr` — as a data
    /// page or as an index page. Used by read-repair to decide whether a
    /// degrading page still holds reachable data.
    pub fn references_page(&self, addr: PhysAddr) -> bool {
        self.levels.iter().flatten().any(|sst| {
            sst.index_pages.contains(&addr) || sst.blocks.iter().any(|b| b.pages.contains(&addr))
        })
    }

    /// Rewire every reference to page `old` so it points at `new`
    /// (read-repair relocation after the payload was copied). Returns the
    /// ids of SSTs whose *data-block* page lists changed — those SSTs'
    /// on-flash index blocks are now stale and must be rewritten via
    /// [`Self::rewrite_index`]. Index-page moves only touch in-memory
    /// metadata (and the manifest, which the caller re-persists).
    pub fn relocate_page(&mut self, old: PhysAddr, new: PhysAddr) -> Vec<u64> {
        let mut stale = Vec::new();
        for sst in self.levels.iter_mut().flatten() {
            let mut data_changed = false;
            for block in &mut sst.blocks {
                for p in &mut block.pages {
                    if *p == old {
                        *p = new;
                        data_changed = true;
                    }
                }
            }
            for p in &mut sst.index_pages {
                if *p == old {
                    *p = new;
                }
            }
            if data_changed {
                stale.push(sst.id);
            }
        }
        stale
    }

    /// Re-serialize the index block of SST `sst_id` to freshly allocated
    /// pages (the bump allocator never reuses pages, so the old index
    /// stays readable until the manifest is re-persisted). No-op for an
    /// unknown id. Returns the completion time.
    pub fn rewrite_index(
        &mut self,
        flash: &mut FlashArray,
        alloc: &mut PageAllocator,
        sst_id: u64,
        now: SimNs,
    ) -> NkvResult<SimNs> {
        let page_bytes = flash.config().page_bytes as usize;
        let Some(sst) = self.levels.iter_mut().flatten().find(|s| s.id == sst_id) else {
            return Ok(now);
        };
        let bytes = serialize_index(sst);
        let n_pages = bytes.len().div_ceil(page_bytes).max(1);
        let pages = alloc.alloc_block(sst.level, n_pages).ok_or(NkvError::OutOfSpace)?;
        let mut done = now;
        for (i, &p) in pages.iter().enumerate() {
            let start = i * page_bytes;
            let end = (start + page_bytes).min(bytes.len());
            let slice = if start < bytes.len() { &bytes[start..end] } else { &[][..] };
            done = done.max(flash.program_page(p, slice, now)?);
        }
        sst.index_pages = pages;
        Ok(done)
    }
}

/// Entry stream of one SST: `(key, record-or-tombstone)` in key order.
type EntryStream = Vec<(u64, Option<Vec<u8>>)>;

/// Load all entries of an SST in key order (records + tombstones merged).
fn load_entries(
    flash: &mut FlashArray,
    sst: &SstMeta,
    now: SimNs,
) -> NkvResult<(SimNs, EntryStream)> {
    let mut recs: Vec<(u64, Option<Vec<u8>>)> = Vec::with_capacity(sst.n_records as usize);
    let mut done = now;
    for i in 0..sst.blocks.len() {
        // Transient read faults must not abort a flush/compaction merge
        // (which has already detached its input levels) — retry a few
        // times; anything persistent still propagates.
        let mut attempt = 0u32;
        let (t, data) = loop {
            match read_block(flash, sst, i, now) {
                Ok(x) => break x,
                Err(NkvError::Flash(e)) if e.is_retryable() && attempt < 4 => attempt += 1,
                Err(e) => return Err(e),
            }
        };
        done = done.max(t);
        for chunk in data.chunks_exact(sst.record_bytes) {
            let key = crate::util::le_u64(chunk, 0, "SST record key during merge")?;
            recs.push((key, Some(chunk.to_vec())));
        }
    }
    // Merge tombstones (both lists are sorted; an SST never holds both a
    // record and a tombstone for the same key — the memtable collapses
    // them before flush).
    let mut out = Vec::with_capacity(recs.len() + sst.tombstones.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < recs.len() || j < sst.tombstones.len() {
        let take_rec = match (recs.get(i), sst.tombstones.get(j)) {
            (Some((rk, _)), Some(tk)) => rk < tk,
            (Some(_), None) => true,
            (None, _) => false,
        };
        if take_rec {
            out.push(recs[i].clone());
            i += 1;
        } else {
            out.push((sst.tombstones[j], None));
            j += 1;
        }
    }
    Ok((done, out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sst::search_block;
    use cosmos_sim::FlashConfig;

    const REC: usize = 20;

    fn rec(key: u64, tag: u8) -> Vec<u8> {
        let mut v = key.to_le_bytes().to_vec();
        v.resize(REC, tag);
        v
    }

    struct Fixture {
        flash: FlashArray,
        alloc: PageAllocator,
        lsm: LsmTree,
    }

    fn fixture() -> Fixture {
        let flash = FlashArray::new(FlashConfig::default());
        let alloc = PageAllocator::new(flash.config());
        let cfg = LsmConfig { memtable_bytes: 16 * 1024, ..LsmConfig::default() };
        let lsm = LsmTree::new("t", REC, cfg, 7);
        Fixture { flash, alloc, lsm }
    }

    /// Full GET through the fixture (memtable, then SSTs in recency
    /// order) — the reference read path used by these tests.
    fn get(fx: &mut Fixture, key: u64) -> Option<Vec<u8>> {
        match fx.lsm.memtable_get(key) {
            Some(Entry::Value(v)) => return Some(v.clone()),
            Some(Entry::Tombstone) => return None,
            None => {}
        }
        let ssts: Vec<SstMeta> = fx.lsm.candidate_ssts(key).into_iter().cloned().collect();
        for sst in ssts {
            if sst.is_tombstoned(key) {
                return None;
            }
            if !sst.may_contain(key) {
                continue;
            }
            if let Some(bi) = sst.block_for(key) {
                let (_, data) = read_block(&mut fx.flash, &sst, bi, 0).unwrap();
                if let Some(r) = search_block(&data, REC, key).unwrap() {
                    return Some(r.to_vec());
                }
            }
        }
        None
    }

    #[test]
    fn put_get_through_memtable() {
        let mut fx = fixture();
        fx.lsm.put(42, rec(42, 1));
        assert_eq!(get(&mut fx, 42), Some(rec(42, 1)));
        assert_eq!(get(&mut fx, 43), None);
    }

    #[test]
    fn flush_moves_data_to_c1_and_preserves_gets() {
        let mut fx = fixture();
        for k in 1..=500u64 {
            fx.lsm.put(k, rec(k, 1));
        }
        fx.lsm.flush(&mut fx.flash, &mut fx.alloc, 0).unwrap();
        assert_eq!(fx.lsm.memtable().len(), 0);
        assert_eq!(fx.lsm.level_sizes()[0], 1);
        for k in [1u64, 250, 500] {
            assert_eq!(get(&mut fx, k), Some(rec(k, 1)));
        }
        assert_eq!(get(&mut fx, 501), None);
    }

    #[test]
    fn newer_flush_shadows_older_version() {
        let mut fx = fixture();
        fx.lsm.put(7, rec(7, 1));
        fx.lsm.flush(&mut fx.flash, &mut fx.alloc, 0).unwrap();
        fx.lsm.put(7, rec(7, 2));
        fx.lsm.flush(&mut fx.flash, &mut fx.alloc, 0).unwrap();
        // Two SSTs in C1, both holding key 7; the newest version wins.
        assert_eq!(fx.lsm.level_sizes()[0], 2);
        assert_eq!(get(&mut fx, 7), Some(rec(7, 2)));
        assert_eq!(fx.lsm.persistent_records(), 2, "no compaction on flush");
    }

    #[test]
    fn tombstone_shadows_flushed_value() {
        let mut fx = fixture();
        fx.lsm.put(9, rec(9, 1));
        fx.lsm.flush(&mut fx.flash, &mut fx.alloc, 0).unwrap();
        fx.lsm.delete(9);
        assert_eq!(get(&mut fx, 9), None, "memtable tombstone shadows");
        fx.lsm.flush(&mut fx.flash, &mut fx.alloc, 0).unwrap();
        assert_eq!(get(&mut fx, 9), None, "flushed tombstone shadows");
    }

    #[test]
    fn should_flush_reflects_memtable_size() {
        let mut fx = fixture();
        assert!(!fx.lsm.should_flush());
        for k in 0..2000u64 {
            fx.lsm.put(k, rec(k, 0));
        }
        assert!(fx.lsm.should_flush());
    }

    #[test]
    fn compaction_merges_newest_wins_and_purges() {
        let mut fx = fixture();
        // Three generations of key 5, latest deleted.
        fx.lsm.put(5, rec(5, 1));
        fx.lsm.put(6, rec(6, 1));
        fx.lsm.flush(&mut fx.flash, &mut fx.alloc, 0).unwrap();
        fx.lsm.put(5, rec(5, 2));
        fx.lsm.flush(&mut fx.flash, &mut fx.alloc, 0).unwrap();
        fx.lsm.delete(6);
        fx.lsm.put(8, rec(8, 3));
        fx.lsm.flush(&mut fx.flash, &mut fx.alloc, 0).unwrap();

        fx.lsm.compact(&mut fx.flash, &mut fx.alloc, 0, 0).unwrap();
        assert_eq!(fx.lsm.level_sizes()[0], 0);
        assert_eq!(fx.lsm.level_sizes()[1], 1);
        // Outdated version of 5 purged; 6's tombstone purged at bottom.
        assert_eq!(fx.lsm.persistent_records(), 2); // keys 5 and 8
        assert_eq!(get(&mut fx, 5), Some(rec(5, 2)));
        assert_eq!(get(&mut fx, 6), None);
        assert_eq!(get(&mut fx, 8), Some(rec(8, 3)));
    }

    #[test]
    fn compaction_above_populated_levels_keeps_tombstones() {
        let mut fx = fixture();
        // Seed the bottom: key 6 lives in level 2 (via two compactions).
        fx.lsm.put(6, rec(6, 1));
        fx.lsm.flush(&mut fx.flash, &mut fx.alloc, 0).unwrap();
        fx.lsm.compact(&mut fx.flash, &mut fx.alloc, 0, 0).unwrap();
        fx.lsm.compact(&mut fx.flash, &mut fx.alloc, 1, 0).unwrap();
        assert_eq!(fx.lsm.level_sizes()[2], 1);
        // Now delete 6 and compact only C1 into C2.
        fx.lsm.delete(6);
        fx.lsm.flush(&mut fx.flash, &mut fx.alloc, 0).unwrap();
        fx.lsm.compact(&mut fx.flash, &mut fx.alloc, 0, 0).unwrap();
        // The tombstone must survive in level 1 to shadow level 2.
        assert_eq!(get(&mut fx, 6), None);
        // ... and a further compaction to the bottom purges everything.
        fx.lsm.compact(&mut fx.flash, &mut fx.alloc, 1, 0).unwrap();
        assert_eq!(get(&mut fx, 6), None);
        assert_eq!(fx.lsm.persistent_records(), 0);
    }

    #[test]
    fn compaction_splits_oversized_merges_without_losing_the_builder() {
        // Regression for the split point in `compact`: it used to
        // `unwrap()` the SST builder when an output run crossed the
        // per-SST record cap (now a typed invariant error). Drive a
        // merge across several split boundaries and verify the
        // multi-SST output serves every record.
        let mut fx = fixture();
        // 64-byte blocks -> 3 records per block -> 192 records per
        // output SST, so 500 records split into three SSTs.
        let cfg = LsmConfig { memtable_bytes: 16 * 1024, block_bytes: 64, ..LsmConfig::default() };
        fx.lsm = LsmTree::new("t", REC, cfg, 7);
        for k in 1..=500u64 {
            fx.lsm.put(k, rec(k, 1));
        }
        fx.lsm.flush(&mut fx.flash, &mut fx.alloc, 0).unwrap();
        fx.lsm.compact(&mut fx.flash, &mut fx.alloc, 0, 0).unwrap();
        assert!(
            fx.lsm.level_sizes()[1] >= 3,
            "merge must split into multiple SSTs: {:?}",
            fx.lsm.level_sizes()
        );
        for k in [1u64, 192, 193, 384, 385, 500] {
            assert_eq!(get(&mut fx, k), Some(rec(k, 1)), "key {k}");
        }
    }

    #[test]
    fn compaction_retires_its_input_ssts() {
        let mut fx = fixture();
        fx.lsm.put(1, rec(1, 1));
        fx.lsm.flush(&mut fx.flash, &mut fx.alloc, 0).unwrap();
        fx.lsm.put(2, rec(2, 1));
        fx.lsm.flush(&mut fx.flash, &mut fx.alloc, 0).unwrap();
        let mut inputs: Vec<u64> = fx.lsm.all_ssts().iter().map(|s| s.id).collect();
        inputs.sort_unstable();
        assert!(fx.lsm.take_retired().is_empty(), "flush retires nothing");
        fx.lsm.compact(&mut fx.flash, &mut fx.alloc, 0, 0).unwrap();
        let mut retired = fx.lsm.take_retired();
        retired.sort_unstable();
        assert_eq!(retired, inputs, "both compaction inputs are retired");
        assert!(fx.lsm.take_retired().is_empty(), "drain empties the list");
    }

    #[test]
    fn candidate_ssts_orders_by_recency() {
        let mut fx = fixture();
        for gen in 0..3u8 {
            fx.lsm.put(10, rec(10, gen));
            fx.lsm.flush(&mut fx.flash, &mut fx.alloc, 0).unwrap();
        }
        let cands = fx.lsm.candidate_ssts(10);
        assert_eq!(cands.len(), 3);
        // Newest flush has the highest SST id and must come first.
        assert!(cands[0].id > cands[1].id && cands[1].id > cands[2].id);
    }

    #[test]
    fn random_workload_matches_btreemap_model() {
        let mut rng = ndp_workload::SplitMix64::new(0xFEED);
        let mut fx = fixture();
        let mut model = std::collections::BTreeMap::new();
        for step in 0..3000u32 {
            let key = rng.gen_range_u64(1, 200);
            if rng.gen_bool(0.8) {
                let r = rec(key, (step % 251) as u8);
                fx.lsm.put(key, r.clone());
                model.insert(key, r);
            } else {
                fx.lsm.delete(key);
                model.remove(&key);
            }
            if fx.lsm.should_flush() {
                fx.lsm.flush(&mut fx.flash, &mut fx.alloc, 0).unwrap();
            }
            if fx.lsm.should_compact(0) {
                fx.lsm.compact(&mut fx.flash, &mut fx.alloc, 0, 0).unwrap();
            }
        }
        for key in 1..200u64 {
            assert_eq!(get(&mut fx, key), model.get(&key).cloned(), "key {key}");
        }
    }

    #[test]
    fn all_ssts_recency_covers_every_level() {
        let mut fx = fixture();
        for k in 1..=100u64 {
            fx.lsm.put(k, rec(k, 1));
        }
        fx.lsm.flush(&mut fx.flash, &mut fx.alloc, 0).unwrap();
        fx.lsm.compact(&mut fx.flash, &mut fx.alloc, 0, 0).unwrap();
        for k in 101..=200u64 {
            fx.lsm.put(k, rec(k, 2));
        }
        fx.lsm.flush(&mut fx.flash, &mut fx.alloc, 0).unwrap();
        let all = fx.lsm.all_ssts();
        assert_eq!(all.len(), 2);
        assert!(all[0].level <= 1, "C1 SSTs come before deeper levels");
        assert_eq!(fx.lsm.ssts_newer_than(1).len(), 1);
        assert_eq!(fx.lsm.ssts_newer_than(0).len(), 0);
    }
}
