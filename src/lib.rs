//! Root crate of the NDP-accelerator-generation reproduction suite.
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! directories; all functionality lives in the workspace crates it re-exports.

pub use cosmos_sim;
pub use ndp_core;
pub use ndp_hdl;
pub use ndp_ir;
pub use ndp_pe;
pub use ndp_spec;
pub use ndp_swgen;
pub use ndp_workload;
pub use nkv;
